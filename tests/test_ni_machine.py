"""Tests for the Fig. 6 NI schedule-management machine."""

import pytest

from repro.collectives import build_schedule, multitree_allreduce, ring_allreduce
from repro.ni import build_schedule_tables, simulate_allreduce, step_estimates
from repro.ni.machine import NIMachine, simulate_with_ni_machines
from repro.ni.schedule_table import TableEntry, TableOp, ScheduleTable
from repro.topology import FatTree, Mesh2D, Torus2D

MiB = 1 << 20


def _machine_for(topo, node=0, data=4 * MiB, alg="multitree"):
    schedule = build_schedule(alg, topo)
    tables = build_schedule_tables(schedule, int(data))
    from repro.network import PacketBased

    est = step_estimates(schedule, data, PacketBased())
    return NIMachine(tables[node], est), schedule


class TestMachineIssueRules:
    def test_leaf_reduce_issues_immediately(self):
        machine, _ = _machine_for(Mesh2D(2, 2))
        entry = machine.try_issue(0.0)
        assert entry is not None
        assert entry.op is TableOp.REDUCE
        assert entry.children == ()

    def test_dependent_reduce_blocks_until_child_arrives(self):
        machine, schedule = _machine_for(Mesh2D(2, 2))
        # Drain everything issueable at t=0.
        while machine.try_issue(0.0) is not None:
            pass
        blocked = machine.entries[machine._cursor]
        assert blocked.op in (TableOp.REDUCE, TableOp.GATHER, TableOp.NOP)
        before = len(machine.issued)
        # Satisfy dependencies by delivering the pending receives.
        for op in schedule.ops:
            if op.dst == machine.node:
                machine.receive_reduce(op.flow, op.src)
                machine.receive_gather(op.flow)
        machine.try_issue(1.0)
        assert len(machine.issued) > before

    def test_root_gather_waits_for_reduce_aggregation(self):
        machine, schedule = _machine_for(Mesh2D(2, 2))
        root_gathers = [
            e for e in machine.entries
            if e.op is TableOp.GATHER and e.parent is None
        ]
        assert len(root_gathers) == 1
        assert root_gathers[0].reduce_deps  # depends on tree children

    def test_nop_arms_lockstep_counter(self):
        table = ScheduleTable(
            node=0,
            entries=[
                TableEntry(TableOp.NOP, None, None, (), step=1),
                TableEntry(TableOp.REDUCE, 0, 1, (), step=2),
            ],
        )
        machine = NIMachine(table, {1: 5.0, 2: 5.0})
        assert machine.try_issue(0.0) is None  # NOP retires, stall armed
        assert machine.lockstep_free_at == 5.0
        assert machine.try_issue(4.0) is None
        entry = machine.try_issue(5.0)
        assert entry is not None and entry.op is TableOp.REDUCE

    def test_issue_order_respects_steps(self):
        machine, schedule = _machine_for(Torus2D(4, 4), node=5)
        for op in schedule.ops:  # satisfy everything
            if op.dst == 5:
                machine.receive_reduce(op.flow, op.src)
                machine.receive_gather(op.flow)
        while not machine.done:
            if machine.try_issue(machine.lockstep_free_at) is None:
                break
        steps = [rec.entry.step for rec in machine.issued]
        assert steps == sorted(steps)


class TestCoSimulation:
    @pytest.mark.parametrize(
        "topo", [Mesh2D(2, 2), Torus2D(4, 4), FatTree(4, 4)], ids=lambda t: t.name
    )
    @pytest.mark.parametrize("alg", ["multitree", "ring"])
    def test_protocol_completes(self, topo, alg):
        schedule = build_schedule(alg, topo)
        result = simulate_with_ni_machines(schedule, 1 * MiB)
        assert result.finish_time > 0
        # Every non-NOP entry issued exactly once.
        tables = build_schedule_tables(schedule, 1 * MiB, insert_nops=False)
        expected = sum(len(t.entries) for t in tables.values())
        assert len(result.issues) == expected

    def test_ring_matches_link_level_simulator(self):
        # One message per node per step: the idealized delivery model is
        # exact and must agree with the full injector+simulator stack.
        topo = Torus2D(4, 4)
        schedule = ring_allreduce(topo)
        machine_time = simulate_with_ni_machines(schedule, 4 * MiB).finish_time
        sim_time = simulate_allreduce(schedule, 4 * MiB).time
        assert machine_time == pytest.approx(sim_time, rel=0.01)

    def test_multitree_lower_bounds_link_level(self):
        topo = FatTree(4, 4)
        schedule = multitree_allreduce(topo)
        machine_time = simulate_with_ni_machines(schedule, 4 * MiB).finish_time
        sim_time = simulate_allreduce(schedule, 4 * MiB).time
        assert machine_time <= sim_time * 1.01

    def test_per_node_issue_logs(self):
        schedule = multitree_allreduce(Mesh2D(2, 2))
        result = simulate_with_ni_machines(schedule, 1 * MiB)
        for node in range(4):
            recs = result.issues_for(node)
            assert recs
            times = [r.time for r in recs]
            assert times == sorted(times)
