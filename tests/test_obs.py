"""repro.obs: spans, carriers, cross-process merge, renderers, overhead."""

import json
import threading
import time
import urllib.error
import urllib.request
from urllib.parse import quote

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.metrics.export import to_prometheus
from repro.metrics.registry import MetricsRegistry, collecting, parse_key
from repro.metrics.report import build_report, engine_mix
from repro.obs import (
    NULL_SPAN,
    ObsRecorder,
    attached,
    current_carrier,
    load_stream,
    observing,
    validate_record,
    validate_stream,
)
from repro.obs.explain import build_trees, format_explain
from repro.obs.export import to_chrome_spans, write_chrome_spans
from repro.obs.overhead import format_overhead, measure_overhead
from repro.obs.status import format_status, summarize
from repro.scenario import Scenario
from repro.serve import PredictionService, RequestLog, make_server
from repro.serve.service import DEFAULT_LOG_MAX_BYTES
from repro.sweep.runner import SweepJob, run_job, run_sweep

KiB = 1024


def small_job(**overrides):
    kwargs = dict(
        topology="torus-2x2",
        algorithm="ring",
        sizes=(4 * KiB, 16 * KiB),
        engine="lockstep-vec",
    )
    kwargs.update(overrides)
    return SweepJob(**kwargs)


class TestSpanBasics:
    def test_nesting_links_parent_and_shares_trace(self):
        rec = ObsRecorder()
        with rec.span("outer") as outer:
            with rec.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        outer_rec, = [r for r in rec.records if r["name"] == "outer"]
        inner_rec, = [r for r in rec.records if r["name"] == "inner"]
        assert outer_rec["parent"] is None
        assert inner_rec["parent"] == outer_rec["span"]
        assert inner_rec["trace"] == outer_rec["trace"]
        # inner closes first: record order is completion order
        assert rec.records[0]["name"] == "inner"

    def test_sibling_traces_are_distinct(self):
        rec = ObsRecorder()
        with rec.span("a"):
            pass
        with rec.span("b"):
            pass
        a, b = rec.records
        assert a["trace"] != b["trace"]

    def test_disabled_spans_are_null_and_free(self):
        assert obs.get_obs() is None
        with obs.span("anything", key="value") as sp:
            assert sp is NULL_SPAN
            sp.set("ignored", 1)  # must not raise
        obs.event("nothing", detail="dropped")
        assert current_carrier() is None

    def test_exception_recorded_and_reraised(self):
        rec = ObsRecorder()
        with pytest.raises(ValueError):
            with rec.span("failing"):
                raise ValueError("boom")
        record, = rec.records
        assert record["attrs"]["error"] == "ValueError: boom"

    def test_none_attrs_dropped_set_and_init(self):
        rec = ObsRecorder()
        with rec.span("s", kept=1, dropped=None) as sp:
            sp.set("also_dropped", None)
            sp.set("also_kept", 2)
        record, = rec.records
        assert record["attrs"] == {"kept": 1, "also_kept": 2}

    def test_ring_buffer_evicts_oldest(self):
        rec = ObsRecorder(capacity=4)
        for i in range(10):
            with rec.span("s%d" % i):
                pass
        assert rec.emitted == 10
        assert len(rec.records) == 4
        assert rec.dropped == 6
        assert [r["name"] for r in rec.records] == ["s6", "s7", "s8", "s9"]

    def test_event_attaches_to_current_span(self):
        rec = ObsRecorder()
        with rec.span("work") as sp:
            rec.event("hit", size=7)
        event = [r for r in rec.records if r["kind"] == "event"][0]
        assert event["span"] == sp.span_id
        assert event["fields"] == {"size": 7}

    def test_event_outside_any_span_has_null_ids(self):
        rec = ObsRecorder()
        rec.event("loose")
        record, = rec.records
        assert record["trace"] is None and record["span"] is None

    def test_all_records_validate(self):
        rec = ObsRecorder()
        with rec.span("outer", topology="torus-2x2"):
            rec.event("engine.fallback", engine="e", reason="r")
        for record in rec.records:
            assert validate_record(record) == []


class TestCarrier:
    def test_carrier_roundtrip_parent_links(self):
        rec = ObsRecorder()
        with rec.span("origin") as origin:
            carrier = current_carrier()
        assert carrier == {"trace": origin.trace_id, "span": origin.span_id}
        # the "remote side": fresh thread context, carrier installed
        with attached(carrier):
            with rec.span("remote") as remote:
                assert remote.trace_id == origin.trace_id
                assert remote.parent_id == origin.span_id

    def test_falsy_carrier_is_noop(self):
        rec = ObsRecorder()
        for carrier in (None, {}):
            with attached(carrier):
                with rec.span("fresh") as sp:
                    assert sp.parent_id is None

    def test_merge_keeps_worker_identity(self):
        parent = ObsRecorder()
        worker = ObsRecorder(proc="worker-1")
        with worker.span("remote.work"):
            pass
        parent.merge(worker.snapshot())
        record, = parent.records
        assert record["proc"] == "worker-1"
        assert record["name"] == "remote.work"


class TestStream:
    def test_stream_flushed_on_close_and_validates(self, tmp_path):
        path = str(tmp_path / "obs.jsonl")
        with observing(stream_path=path) as rec:
            with obs.span("outer"):
                obs.event("inside")
        assert rec is not None
        records = load_stream(path)
        assert [r["name"] for r in records] == ["inside", "outer"]
        count, errors = validate_stream(path)
        assert count == 2 and errors == []

    def test_stream_batches_whole_lines(self, tmp_path):
        path = str(tmp_path / "obs.jsonl")
        rec = ObsRecorder(stream_path=path)
        for i in range(50):
            with rec.span("s%d" % i):
                pass
        # mid-run, whatever is on disk parses line by line (no torn lines)
        with open(path) as fh:
            for line in fh:
                json.loads(line)
        rec.flush()
        assert len(load_stream(path)) == 50
        rec.close()

    def test_torn_final_line_tolerated(self, tmp_path):
        path = str(tmp_path / "obs.jsonl")
        with observing(stream_path=path):
            with obs.span("whole"):
                pass
        with open(path, "a") as fh:
            fh.write('{"kind": "span", "trace"')  # a live writer mid-record
        assert [r["name"] for r in load_stream(path)] == ["whole"]
        count, errors = validate_stream(path)
        assert count == 1 and errors == []

    def test_torn_middle_line_is_an_error(self, tmp_path):
        path = str(tmp_path / "obs.jsonl")
        rec = ObsRecorder(stream_path=path)
        with rec.span("first"):
            pass
        rec.close()
        with open(path, "a") as fh:
            fh.write("garbage not json\n")
        rec2 = ObsRecorder(stream_path=path)
        with rec2.span("second"):
            pass
        rec2.close()
        count, errors = validate_stream(path)
        assert count == 2
        assert len(errors) == 1 and "unparseable" in errors[0]

    def test_observing_restores_previous_recorder(self):
        outer = ObsRecorder()
        previous = obs.set_obs(outer)
        try:
            with observing() as inner:
                assert obs.get_obs() is inner
            assert obs.get_obs() is outer
        finally:
            obs.set_obs(previous)


class TestSweepObservation:
    def test_serial_sweep_is_one_tree(self):
        jobs = [small_job(), small_job(algorithm="dbtree")]
        with observing() as rec:
            run_sweep(jobs)
        spans = [r for r in rec.records if r["kind"] == "span"]
        assert {r["trace"] for r in spans} == {spans[0]["trace"]}
        roots_by_trace, orphans, _loose = build_trees(rec.records)
        assert orphans == []
        root, = roots_by_trace[spans[0]["trace"]]
        assert root.name == "sweep.run"
        names = [n.name for n in root.walk()]
        assert names.count("sweep.job") == len(jobs)
        job_spans = [n for n in root.walk() if n.name == "sweep.job"]
        assert all("fingerprint" in n.attrs for n in job_spans)

    def test_pool_spans_merge_parent_linked(self, tmp_path):
        jobs = [small_job(), small_job(algorithm="dbtree"),
                small_job(sizes=(8 * KiB,))]
        with observing() as rec:
            run_sweep(jobs, processes=2)
        spans = [r for r in rec.records if r["kind"] == "span"]
        assert {r["trace"] for r in spans} == {spans[0]["trace"]}
        roots_by_trace, orphans, _loose = build_trees(rec.records)
        assert orphans == []
        root, = roots_by_trace[spans[0]["trace"]]
        run_span = [r for r in spans if r["name"] == "sweep.run"][0]
        job_spans = [r for r in spans if r["name"] == "sweep.job"]
        assert len(job_spans) == len(jobs)
        assert all(r["parent"] == run_span["span"] for r in job_spans)

    @settings(max_examples=5, deadline=None)
    @given(order=st.permutations([0, 1, 2, 3]))
    def test_pool_tree_connected_any_job_order(self, order):
        pool = [
            small_job(),
            small_job(algorithm="dbtree"),
            small_job(sizes=(8 * KiB,)),
            small_job(algorithm="multitree"),
        ]
        jobs = [pool[i] for i in order]
        with observing() as rec:
            run_sweep(jobs, processes=4)
        spans = [r for r in rec.records if r["kind"] == "span"]
        traces = {r["trace"] for r in spans}
        assert len(traces) == 1, "split trace across workers"
        _roots, orphans, _loose = build_trees(rec.records)
        assert orphans == [], "worker span lost its parent link"
        assert sum(r["name"] == "sweep.job" for r in spans) == len(jobs)

    def test_results_identical_with_and_without_obs(self):
        job = small_job()
        plain = run_job(job)
        with observing():
            observed = run_job(job)
        assert [(p.data_bytes, p.time, p.bandwidth) for p in plain.points] \
            == [(p.data_bytes, p.time, p.bandwidth) for p in observed.points]


class TestFallbackReasons:
    def test_vec_decline_emits_reasoned_event_and_counter(self):
        # dbtree on torus-2x2 schedules multi-channel steps: the batched
        # vec engine declines every size with a concrete gate name.
        job = small_job(algorithm="dbtree")
        registry = MetricsRegistry()
        with collecting(registry):
            with observing() as rec:
                run_job(job)
        events = [r for r in rec.records
                  if r["kind"] == "event" and r["name"] == "engine.fallback"]
        assert events, "vec decline should emit fallback events"
        for event in events:
            fields = event["fields"]
            assert fields["engine"] == "lockstep-vec"
            assert fields["reason"] in (
                "multi-channel", "link-disjointness", "wire-total",
                "gate-boundary", "not-lockstep-gated", "unknown-link",
                "plan",
            )
            assert event["span"] is not None  # attached under sim.batch
        reasons = set()
        for key in registry.snapshot()["counters"]:
            name, labels = parse_key(key)
            if name == "sim.fallbacks":
                reasons.add((labels.get("engine"), labels.get("reason")))
        assert ("lockstep-vec", "multi-channel") in reasons

    def test_counter_labels_stay_low_cardinality(self):
        # per-size detail goes to the event only, never into counter keys
        registry = MetricsRegistry()
        with collecting(registry):
            obs.record_fallback(
                "lockstep-vec", "wire-total", topology="t", size=4096
            )
        key, = [k for k in registry.snapshot()["counters"]
                if k.startswith("sim.fallbacks")]
        assert "size" not in key
        assert "reason=wire-total" in key

    def test_fallback_without_any_collector_is_noop(self):
        obs.record_fallback("lockstep", "step-overlap")  # must not raise


class TestServeObservation:
    SCENARIO = "torus-2x2/ring/32KiB@event"

    @pytest.fixture()
    def live_server(self, tmp_path):
        log = RequestLog(str(tmp_path / "state" / "requests.jsonl"))
        service = PredictionService(
            str(tmp_path / "state"), workers=1, request_log=log
        )
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = "http://127.0.0.1:%d" % server.server_address[1]
        try:
            yield base, service
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            service.close()

    @staticmethod
    def _get(url):
        try:
            with urllib.request.urlopen(url, timeout=30) as response:
                return response.status, response.headers
        except urllib.error.HTTPError as error:
            return error.code, error.headers

    def test_request_produces_one_correlated_tree(self, live_server):
        base, _service = live_server
        with observing() as rec:
            status, headers = self._get(
                base + "/predict?scenario=" + quote(self.SCENARIO, safe="")
            )
            assert status == 202  # cold miss: answer comes via the worker
            trace_id = headers["X-Trace-Id"]
            assert trace_id
            deadline = time.time() + 30
            while time.time() < deadline:
                done = [r for r in rec.snapshot()
                        if r["kind"] == "span" and r["name"] == "serve.compute"]
                if done:
                    break
                time.sleep(0.05)
            assert done, "background warm never completed"
        spans = [r for r in rec.records if r["kind"] == "span"]
        names = {r["name"] for r in spans if r["trace"] == trace_id}
        # handler thread and worker thread stitched into one trace
        assert {"http.request", "serve.predict", "serve.warm",
                "serve.compute", "sim.run"} <= names
        _roots, orphans, _loose = build_trees(spans)
        assert orphans == []

    def test_no_trace_header_when_obs_off(self, live_server):
        base, _service = live_server
        status, headers = self._get(base + "/healthz")
        assert status == 200
        assert headers.get("X-Trace-Id") is None


class TestRequestLogRotation:
    @staticmethod
    def _record(i):
        return {"endpoint": "/predict", "status": 200, "n": i,
                "pad": "x" * 80}

    def test_rotation_rolls_to_dot_one(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        log = RequestLog(str(path), max_bytes=600)
        for i in range(20):
            log.append(self._record(i))
        log.close()
        assert log.rotations >= 1
        assert (tmp_path / "requests.jsonl.1").exists()
        # no record lost: live file + one rollover hold the recent tail
        kept = []
        for name in ("requests.jsonl.1", "requests.jsonl"):
            with open(tmp_path / name) as fh:
                kept.extend(json.loads(line)["n"] for line in fh)
        assert kept == sorted(kept)
        assert kept[-1] == 19

    def test_oversized_single_record_does_not_rotate_empty_file(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        log = RequestLog(str(path), max_bytes=64)
        log.append({"pad": "y" * 200})
        log.close()
        assert log.rotations == 0
        assert not (tmp_path / "requests.jsonl.1").exists()

    def test_size_resumes_from_existing_file(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        first = RequestLog(str(path), max_bytes=600)
        for i in range(3):
            first.append(self._record(i))
        first.close()
        second = RequestLog(str(path), max_bytes=600)
        for i in range(3, 20):
            second.append(self._record(i))
        second.close()
        assert second.rotations >= 1

    def test_default_cap_is_sane(self):
        assert DEFAULT_LOG_MAX_BYTES == 64 * 1024 * 1024


class TestPrometheusExposition:
    def test_help_precedes_type_per_family(self):
        registry = MetricsRegistry()
        registry.counter("sim.runs").inc()
        registry.counter(
            "sim.fallbacks", engine="lockstep-vec", reason="wire-total"
        ).inc()
        lines = to_prometheus(registry).splitlines()
        for i, line in enumerate(lines):
            if line.startswith("# TYPE "):
                name = line.split()[2]
                assert lines[i - 1].startswith("# HELP %s " % name)
        helps = [l for l in lines if l.startswith("# HELP")]
        assert any("repro_sim_fallbacks_total" in l and "validation gate" in l
                   for l in helps)

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter(
            "sim.fallbacks", engine='e"dge', reason="a\\b", topology="x\ny"
        ).inc()
        text = to_prometheus(registry)
        sample = [l for l in text.splitlines()
                  if l.startswith("repro_sim_fallbacks_total")][0]
        assert 'engine="e\\"dge"' in sample
        assert 'reason="a\\\\b"' in sample
        assert 'topology="x\\ny"' in sample

    def test_unknown_family_gets_generic_help(self):
        registry = MetricsRegistry()
        registry.counter("made.up_metric").inc()
        text = to_prometheus(registry)
        assert "# HELP repro_made_up_metric_total repro metric" in text


class TestRenderers:
    def _stream(self):
        rec = ObsRecorder()
        with rec.span("sweep.run", jobs=1):
            with rec.span("sweep.job", topology="torus-2x2"):
                obs_rec = rec  # events below attach to sweep.job
                obs_rec.event(
                    "engine.fallback", engine="lockstep-vec",
                    reason="multi-channel", count=2,
                )
        return rec.records

    def test_explain_renders_waterfall_with_fallbacks(self):
        text = format_explain(self._stream())
        assert "sweep.run" in text and "sweep.job" in text
        assert "! engine.fallback" in text
        assert "1 fallback" in text  # one fallback *event* in the header

    def test_explain_trace_filter_and_miss(self):
        records = list(self._stream())
        trace = records[0]["trace"]
        assert "sweep.run" in format_explain(records, trace=trace[:6])
        assert "no trace matching" in format_explain(records, trace="zzz")

    def test_explain_flags_orphans(self):
        records = list(self._stream())
        spans = [r for r in records if r["kind"] == "span"]
        # drop the root: the child's parent id no longer resolves
        broken = [r for r in records if r["name"] != "sweep.run"]
        assert len(spans) == 2
        assert "orphan" in format_explain(broken)

    def test_status_summary_counts(self):
        records = self._stream()
        summary = summarize(records)
        assert summary["spans"] == 2 and summary["events"] == 1
        assert summary["fallbacks"] == {("lockstep-vec", "multi-channel"): 2}
        text = format_status(records, path="obs.jsonl")
        assert "engine fallbacks by reason" in text
        assert "multi-channel" in text

    def test_status_empty_stream(self):
        assert "empty" in format_status([], path="obs.jsonl")

    def test_perfetto_export_tracks_and_args(self, tmp_path):
        records = self._stream()
        doc = to_chrome_spans(records)
        slices = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert len(slices) == 2
        assert all(e["args"]["trace"] == records[0]["trace"] for e in slices)
        instant, = [e for e in doc["traceEvents"] if e.get("ph") == "i"]
        assert instant["args"]["reason"] == "multi-channel"
        out = tmp_path / "spans.perfetto.json"
        write_chrome_spans(records, str(out))
        assert json.loads(out.read_text())["otherData"]["spans"] == "2"


class TestOverhead:
    def test_measure_with_stub_workload(self):
        calls = []
        result = measure_overhead(
            repeat=2, inner=1, stream=False, workload=lambda: calls.append(1)
        )
        assert calls  # warm call + 2 pairs x 2 sides
        assert set(result) >= {
            "baseline_s", "obs_s", "overhead", "records_per_run",
            "repeat", "inner", "streamed",
        }
        assert result["streamed"] is False
        assert "obs overhead:" in format_overhead(result)


class TestReportEngineMix:
    def _record(self):
        registry = MetricsRegistry()
        with collecting(registry):
            run_job(small_job(algorithm="dbtree"))
        return {
            "run_id": "r1",
            "command": "sweep",
            "metrics": registry.snapshot(),
        }

    def test_engine_mix_extracts_reasoned_counters(self):
        runs, fallbacks = engine_mix(self._record())
        assert any(engine == "lockstep-vec" for engine, _ in runs) or runs == {}
        assert any(
            engine == "lockstep-vec" and reason == "multi-channel"
            for engine, reason, _topo in fallbacks
        )

    def test_legacy_records_fold_in_unreasoned(self):
        record = {
            "metrics": {
                "counters": {
                    "sim.lockstep_vec_fallbacks|topology=torus-2x2": 3.0,
                }
            }
        }
        _runs, fallbacks = engine_mix(record)
        assert fallbacks == {("lockstep-vec", "(unreasoned)", "torus-2x2"): 3.0}

    def test_report_renders_engine_mix_section(self):
        text, _regressions = build_report([self._record()])
        assert "## Engine mix (latest run)" in text
        assert "multi-channel" in text
