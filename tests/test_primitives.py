"""Tests for the extra collectives built on MULTITREE trees (§VII-B)."""

import pytest

from repro.collectives import (
    all_gather_schedule,
    alltoall_schedule,
    broadcast_schedule,
    reduce_scatter_schedule,
    reduce_schedule,
    verify_all_gather,
    verify_alltoall,
    verify_broadcast,
    verify_reduce,
    verify_reduce_scatter,
)
from repro.collectives.schedule import OpKind
from repro.ni import simulate_allreduce
from repro.topology import BiGraph, FatTree, Mesh2D, Torus2D

TOPOLOGIES = [Torus2D(4, 4), Mesh2D(4, 4), FatTree(4, 4), BiGraph(2, 4)]
MiB = 1 << 20


class TestReduceScatter:
    @pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: t.name)
    def test_correct(self, topo):
        verify_reduce_scatter(reduce_scatter_schedule(topo))

    def test_half_the_allreduce_steps(self):
        topo = Torus2D(4, 4)
        rs = reduce_scatter_schedule(topo)
        assert rs.num_steps == rs.metadata["tot_t"]

    def test_only_reduce_ops(self):
        rs = reduce_scatter_schedule(Torus2D(4, 4))
        assert all(op.kind is OpKind.REDUCE for op in rs.ops)

    def test_contention_free(self):
        assert reduce_scatter_schedule(Torus2D(4, 4)).max_step_link_overlap() == 1


class TestAllGather:
    @pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: t.name)
    def test_correct(self, topo):
        verify_all_gather(all_gather_schedule(topo))

    def test_only_gather_ops(self):
        ag = all_gather_schedule(Torus2D(4, 4))
        assert all(op.kind is OpKind.GATHER for op in ag.ops)

    def test_simulates(self):
        res = simulate_allreduce(all_gather_schedule(Torus2D(4, 4)), 4 * MiB)
        assert res.time > 0


class TestBroadcastReduce:
    @pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: t.name)
    def test_broadcast_correct(self, topo):
        for root in (0, topo.num_nodes - 1):
            verify_broadcast(broadcast_schedule(topo, root), root)

    @pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: t.name)
    def test_reduce_correct(self, topo):
        for root in (0, topo.num_nodes // 2):
            verify_reduce(reduce_schedule(topo, root), root)

    def test_bad_root_rejected(self):
        with pytest.raises(ValueError):
            broadcast_schedule(Torus2D(2, 2), root=99)
        with pytest.raises(ValueError):
            reduce_schedule(Torus2D(2, 2), root=-1)

    def test_broadcast_has_n_minus_1_transfers(self):
        topo = Torus2D(4, 4)
        assert len(broadcast_schedule(topo, 3).ops) == 15

    def test_broadcast_depth_logarithmic_on_torus(self):
        topo = Torus2D(4, 4)
        schedule = broadcast_schedule(topo, 0)
        # Bounded by MultiTree's construction depth, far below ring's n-1.
        assert schedule.num_steps <= 6


class TestAllToAll:
    @pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: t.name)
    def test_correct(self, topo):
        verify_alltoall(alltoall_schedule(topo))

    def test_edge_carries_subtree_destinations(self):
        topo = Torus2D(2, 2)
        schedule = alltoall_schedule(topo)
        # Total ops = sum over trees of sum of subtree sizes = n * (paths).
        assert len(schedule.ops) >= 4 * 3
        # Every (source, destination) pair except self is deliverable.
        pairs = {(op.flow, int(op.chunk.lo * 4)) for op in schedule.ops}
        for src in range(4):
            for dst in range(4):
                if src != dst:
                    assert (src, dst) in pairs

    def test_volume_exceeds_allgather(self):
        # Personalized all-to-all forwards distinct data through internal
        # nodes, so total volume exceeds the broadcast tree's n-1 chunks.
        topo = Torus2D(4, 4)
        a2a = alltoall_schedule(topo)
        ag = all_gather_schedule(topo)
        assert float(a2a.total_data_fraction()) > float(ag.total_data_fraction()) / 16

    def test_simulates_with_lockstep(self):
        res = simulate_allreduce(alltoall_schedule(Torus2D(4, 4)), 4 * MiB)
        assert res.time > 0
