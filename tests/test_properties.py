"""Property-based tests (hypothesis) on core invariants."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives import (
    build_schedule,
    dbtree_allreduce,
    double_binary_trees,
    halving_doubling_allreduce,
    multitree_allreduce,
    ring_allreduce,
    verify_allreduce,
)
from repro.collectives.schedule import ChunkRange
from repro.network import Message, NetworkSimulator, PacketBased
from repro.network.flowcontrol import MessageBased
from repro.topology import BiGraph, FatTree, Mesh2D, Torus2D


# -- strategies ---------------------------------------------------------------

grid_dims = st.tuples(st.integers(2, 5), st.integers(2, 5))

topologies = st.one_of(
    grid_dims.map(lambda wh: Torus2D(*wh)),
    grid_dims.map(lambda wh: Mesh2D(*wh)),
    st.tuples(st.integers(2, 4), st.integers(2, 4)).map(lambda a: FatTree(*a)),
    st.sampled_from([BiGraph(2, 2), BiGraph(2, 4), BiGraph(2, 6)]),
)


# -- all-reduce correctness under random topologies and inputs -----------------

@settings(max_examples=25, deadline=None)
@given(topo=topologies, seed=st.integers(0, 2**31))
def test_ring_allreduce_always_correct(topo, seed):
    rng = np.random.default_rng(seed)
    schedule = ring_allreduce(topo)
    grain = schedule.granularity
    inputs = rng.integers(-1000, 1000, size=(topo.num_nodes, grain), dtype=np.int64)
    verify_allreduce(schedule, inputs)


@settings(max_examples=20, deadline=None)
@given(topo=topologies)
def test_multitree_allreduce_always_correct(topo):
    verify_allreduce(multitree_allreduce(topo))


@settings(max_examples=20, deadline=None)
@given(topo=topologies)
def test_multitree_always_contention_free(topo):
    assert multitree_allreduce(topo).max_step_link_overlap() == 1


@settings(max_examples=20, deadline=None)
@given(topo=topologies, blocks=st.integers(1, 6))
def test_dbtree_allreduce_always_correct(topo, blocks):
    verify_allreduce(dbtree_allreduce(topo, num_blocks=blocks))


@settings(max_examples=15, deadline=None)
@given(wh=grid_dims)
def test_ring2d_always_correct(wh):
    verify_allreduce(build_schedule("2d-ring", Torus2D(*wh)))


@settings(max_examples=10, deadline=None)
@given(log_n=st.integers(2, 6), seed=st.integers(0, 2**31))
def test_halving_doubling_any_permutation_correct(log_n, seed):
    n = 2 ** log_n
    topo = Torus2D(2 ** (log_n // 2), 2 ** (log_n - log_n // 2))
    assert topo.num_nodes == n
    rng = np.random.default_rng(seed)
    perm = [int(x) for x in rng.permutation(n)]
    verify_allreduce(halving_doubling_allreduce(topo, rank_to_node=perm))


# -- chunk range algebra --------------------------------------------------------

fractions = st.fractions(min_value=0, max_value=1, max_denominator=64)


@given(a=fractions, b=fractions)
def test_chunkrange_construction_consistency(a, b):
    lo, hi = min(a, b), max(a, b)
    if lo == hi:
        with pytest.raises(ValueError):
            ChunkRange(lo, hi)
    else:
        c = ChunkRange(lo, hi)
        assert c.fraction == hi - lo
        assert c.overlaps(c)


@given(i=st.integers(0, 63), j=st.integers(0, 63), n=st.just(64))
def test_distinct_chunks_never_overlap(i, j, n):
    a, b = ChunkRange.nth_of(i, n), ChunkRange.nth_of(j, n)
    assert a.overlaps(b) == (i == j)


@given(i=st.integers(0, 15))
def test_unit_span_roundtrip(i):
    c = ChunkRange.nth_of(i, 16)
    lo, hi = c.unit_span(16)
    assert (lo, hi) == (i, i + 1)
    lo2, hi2 = c.unit_span(64)
    assert (lo2, hi2) == (4 * i, 4 * i + 4)


# -- double binary trees ---------------------------------------------------------

@given(n=st.integers(2, 128))
def test_double_binary_trees_always_valid(n):
    for tree in double_binary_trees(n):
        nodes = tree.nodes()
        assert sorted(nodes) == list(range(n))
        # Parent links are acyclic and reach the root.
        for node in nodes:
            seen = set()
            cur = node
            while cur != tree.root:
                assert cur not in seen
                seen.add(cur)
                cur = tree.parent[cur]


@given(n=st.integers(2, 128).filter(lambda n: n % 2 == 0))
def test_even_n_leaves_complementary(n):
    t1, t2 = double_binary_trees(n)
    leaves1 = {r for r in range(n) if not t1.children.get(r)}
    leaves2 = {r for r in range(n) if not t2.children.get(r)}
    assert leaves1.isdisjoint(leaves2)


# -- simulator conservation laws ---------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(
    sizes=st.lists(st.integers(1024, 1 << 20), min_size=1, max_size=8),
    seed=st.integers(0, 2**31),
)
def test_simulator_time_bounds(sizes, seed):
    """Finish time is at least the largest serialization + latency and at
    most the fully serialized sum; queue delays are never negative."""
    topo = Torus2D(4, 4)
    fc = PacketBased()
    rng = np.random.default_rng(seed)
    msgs = []
    for size in sizes:
        src = int(rng.integers(0, 16))
        dst = int(rng.integers(0, 16))
        if src == dst:
            dst = (dst + 1) % 16
        msgs.append(Message(src, dst, size, route=topo.route(src, dst)))
    res = NetworkSimulator(topo, fc).run(msgs)
    min_bound = max(
        fc.serialization_time(m.payload_bytes, 16e9) + 150e-9 * len(m.route)
        for m in msgs
    )
    max_bound = sum(
        fc.serialization_time(m.payload_bytes, 16e9) * len(m.route)
        + 150e-9 * len(m.route)
        for m in msgs
    )
    assert min_bound - 1e-12 <= res.finish_time <= max_bound + 1e-12
    assert all(t.queue_delay >= -1e-12 for t in res.timings)


@settings(max_examples=20, deadline=None)
@given(size=st.integers(1024, 1 << 22))
def test_message_flow_control_never_slower(size):
    topo = Torus2D(4, 4)
    schedule = ring_allreduce(topo)
    from repro.ni import simulate_allreduce

    t_pkt = simulate_allreduce(schedule, size, PacketBased()).time
    t_msg = simulate_allreduce(schedule, size, MessageBased()).time
    assert t_msg <= t_pkt + 1e-12
