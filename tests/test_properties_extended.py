"""Second round of property-based tests over the extension surface."""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import step_utilization, utilization_summary
from repro.analysis.volume import max_node_volume_fraction, optimal_volume_fraction
from repro.collectives import (
    ALGORITHMS,
    all_gather_schedule,
    alltoall_schedule,
    broadcast_schedule,
    build_schedule,
    multitree_allreduce,
    reduce_scatter_schedule,
    reduce_schedule,
    schedule_from_dict,
    schedule_to_dict,
    verify_all_gather,
    verify_allreduce,
    verify_alltoall,
    verify_broadcast,
    verify_reduce,
    verify_reduce_scatter,
)
from repro.topology import GraphTopology, Mesh2D, Ring1D, Torus2D, Torus3D

random_graphs = st.builds(
    GraphTopology.random_regular,
    num_nodes=st.sampled_from([6, 8, 10, 12]),
    degree=st.sampled_from([3, 4]),
    seed=st.integers(0, 50),
)

small_topologies = st.one_of(
    random_graphs,
    st.builds(Torus2D, st.integers(2, 4), st.integers(2, 4)),
    st.builds(Ring1D, st.integers(3, 9)),
)


@settings(max_examples=15, deadline=None)
@given(topo=small_topologies)
def test_primitives_correct_on_any_topology(topo):
    verify_reduce_scatter(reduce_scatter_schedule(topo))
    verify_all_gather(all_gather_schedule(topo))
    verify_alltoall(alltoall_schedule(topo))


@settings(max_examples=10, deadline=None)
@given(topo=small_topologies, root_frac=st.floats(0, 0.999))
def test_rooted_primitives_any_root(topo, root_frac):
    root = int(root_frac * topo.num_nodes)
    verify_broadcast(broadcast_schedule(topo, root), root)
    verify_reduce(reduce_schedule(topo, root), root)


@settings(max_examples=15, deadline=None)
@given(topo=small_topologies)
def test_any_correct_allreduce_respects_volume_lower_bound(topo):
    """Information-theoretic floor: every node must send at least D/n * ...
    — concretely, no correct algorithm we build undercuts the 2(n-1)/n
    bound (MultiTree meets it with equality)."""
    schedule = multitree_allreduce(topo)
    verify_allreduce(schedule)
    assert max_node_volume_fraction(schedule) >= optimal_volume_fraction(topo.num_nodes)


@settings(max_examples=10, deadline=None)
@given(topo=small_topologies)
def test_step_utilization_bounded(topo):
    schedule = multitree_allreduce(topo)
    util = step_utilization(schedule)
    assert all(0.0 <= u <= 1.0 for u in util.values())
    lo, mean, hi = utilization_summary(schedule)
    assert 0.0 <= lo <= mean <= hi <= 1.0


@settings(max_examples=10, deadline=None)
@given(topo=small_topologies)
def test_serialization_roundtrip_property(topo):
    schedule = multitree_allreduce(topo)
    blob = json.dumps(schedule_to_dict(schedule))
    restored = schedule_from_dict(json.loads(blob), topo)
    assert restored.ops == schedule.ops


@settings(max_examples=8, deadline=None)
@given(
    width=st.integers(2, 3),
    height=st.integers(2, 3),
    channels=st.integers(1, 3),
)
def test_multitree_respects_any_channel_width(width, height, channels):
    topo = Torus2D(width, height, channels=channels)
    schedule = multitree_allreduce(topo)
    verify_allreduce(schedule)
    assert schedule.max_step_link_overlap() == 1


@settings(max_examples=6, deadline=None)
@given(dims=st.tuples(st.integers(2, 3), st.integers(2, 3), st.integers(2, 3)))
def test_multitree_3d_torus_property(dims):
    schedule = multitree_allreduce(Torus3D(*dims))
    verify_allreduce(schedule)
    assert schedule.max_step_link_overlap() == 1


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 30))
def test_all_generic_algorithms_agree_on_random_graph(seed):
    """Every topology-agnostic algorithm computes the same sums."""
    topo = GraphTopology.random_regular(8, 3, seed=seed)
    rng = np.random.default_rng(seed)
    for name in ("ring", "dbtree", "multitree", "halving-doubling", "butterfly"):
        schedule = build_schedule(name, topo)
        grain = max(schedule.granularity, 1)
        inputs = rng.integers(-100, 100, size=(8, grain), dtype=np.int64)
        verify_allreduce(schedule, inputs)
