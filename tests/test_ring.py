"""Tests for ring all-reduce."""

import numpy as np
import pytest

from repro.analysis.volume import (
    is_bandwidth_optimal,
    links_used_fraction,
    max_node_volume_fraction,
)
from repro.collectives import ring_allreduce, verify_allreduce
from repro.collectives.schedule import OpKind
from repro.topology import BiGraph, FatTree, Mesh2D, Torus2D, ring_order


TOPOLOGIES = [Torus2D(4, 4), Mesh2D(4, 4), FatTree(4, 4), BiGraph(2, 4), Torus2D(8, 8)]


@pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: t.name)
def test_ring_correct_everywhere(topo):
    verify_allreduce(ring_allreduce(topo))


def test_step_count_is_2n_minus_2():
    schedule = ring_allreduce(Torus2D(4, 4))
    assert schedule.num_steps == 30


def test_bandwidth_optimal():
    schedule = ring_allreduce(Torus2D(4, 4))
    assert is_bandwidth_optimal(schedule)


def test_every_step_all_nodes_active():
    schedule = ring_allreduce(Torus2D(4, 4))
    for _step, ops in schedule.steps():
        assert len(ops) == 16
        assert {op.src for op in ops} == set(range(16))


def test_reduce_then_gather_phases():
    schedule = ring_allreduce(Torus2D(4, 4))
    for op in schedule.ops:
        if op.step <= 15:
            assert op.kind is OpKind.REDUCE
        else:
            assert op.kind is OpKind.GATHER


def test_contention_free_on_grid():
    for topo in (Torus2D(4, 4), Mesh2D(4, 4)):
        schedule = ring_allreduce(topo)
        assert schedule.max_step_link_overlap() == 1


def test_single_hop_on_torus_hamiltonian():
    topo = Torus2D(4, 4)
    schedule = ring_allreduce(topo)
    assert all(len(schedule.route_of(op)) == 1 for op in schedule.ops)


def test_uses_25_percent_of_torus_links():
    # The paper's motivating figure: 25% link utilization on a 4x4 Torus.
    schedule = ring_allreduce(Torus2D(4, 4))
    assert links_used_fraction(schedule) == pytest.approx(0.25)


def test_custom_order_accepted():
    topo = Torus2D(2, 2)
    schedule = ring_allreduce(topo, order=[3, 1, 0, 2])
    verify_allreduce(schedule)


def test_invalid_order_rejected():
    with pytest.raises(ValueError):
        ring_allreduce(Torus2D(2, 2), order=[0, 1, 2, 2])


def test_ring_order_groups_by_leaf_on_fattree():
    ft = FatTree(4, 4)
    order = ring_order(ft)
    assert order == list(range(16))


def test_correct_with_explicit_inputs():
    topo = Torus2D(2, 2)
    schedule = ring_allreduce(topo)
    inputs = np.arange(16, dtype=np.int64).reshape(4, 4)
    result = verify_allreduce(schedule, inputs)
    assert np.array_equal(result.expected, inputs.sum(axis=0))
