"""Tests for the 2D-Ring all-reduce."""

import pytest

from repro.analysis.volume import volume_ratio_to_optimal
from repro.collectives import ring2d_allreduce, verify_allreduce
from repro.topology import FatTree, Mesh2D, Torus2D


@pytest.mark.parametrize(
    "topo",
    [Torus2D(4, 4), Torus2D(8, 8), Mesh2D(4, 4), Mesh2D(8, 8), Torus2D(4, 8)],
    ids=lambda t: t.name,
)
def test_correct_on_grids(topo):
    verify_allreduce(ring2d_allreduce(topo))


def test_requires_grid_topology():
    with pytest.raises(TypeError):
        ring2d_allreduce(FatTree(4, 4))


def test_far_fewer_steps_than_flat_ring():
    schedule = ring2d_allreduce(Torus2D(8, 8))
    # 2(W-1) + 2(H-1) = 28 steps vs flat ring's 126.
    assert schedule.num_steps == 28


def test_volume_is_about_twice_optimal():
    # The paper's 2N(N-1) vs N^2-1 claim: ratio 2N/(N+1).
    schedule = ring2d_allreduce(Torus2D(8, 8))
    n = 8
    expected = (2 * n) / (n + 1)
    assert volume_ratio_to_optimal(schedule) == pytest.approx(expected, rel=1e-6)


def test_four_concurrent_parts():
    schedule = ring2d_allreduce(Torus2D(4, 4))
    assert schedule.metadata["parts"] == 4
    # Quarter boundaries: ops stay inside their part's quarter.
    for op in schedule.ops:
        quarter = int(op.chunk.lo * 4)
        assert op.chunk.hi <= (quarter + 1) / 4 + 1e-12


def test_contention_free_on_torus():
    schedule = ring2d_allreduce(Torus2D(4, 4))
    assert schedule.max_step_link_overlap() == 1


def test_uses_all_torus_links():
    from repro.analysis.volume import links_used_fraction

    schedule = ring2d_allreduce(Torus2D(4, 4))
    assert links_used_fraction(schedule) == pytest.approx(1.0)


def test_mesh_wrap_segments_are_multi_hop():
    schedule = ring2d_allreduce(Mesh2D(4, 4))
    hops = [len(schedule.route_of(op)) for op in schedule.ops]
    # The wrap pair of each mesh dimension crosses width-1 = 3 hops.
    assert max(hops) == 3


def test_torus_segments_single_hop():
    schedule = ring2d_allreduce(Torus2D(4, 4))
    assert all(len(schedule.route_of(op)) == 1 for op in schedule.ops)
