"""Tests for the high-level Communicator runtime."""

import numpy as np
import pytest

from repro.network import MessageBased
from repro.runtime import Communicator
from repro.topology import FatTree, Mesh2D, Torus2D


class TestAllReduceData:
    @pytest.mark.parametrize("algorithm", ["ring", "multitree", "2d-ring", "dbtree"])
    def test_integer_exactness(self, algorithm):
        topo = Torus2D(4, 4)
        comm = Communicator(topo, algorithm)
        rng = np.random.default_rng(3)
        data = rng.integers(-1000, 1000, size=(16, 160), dtype=np.int64)
        out, timing = comm.all_reduce(data)
        expected = data.sum(axis=0)
        assert np.array_equal(out, np.tile(expected, (16, 1)))
        assert timing.time > 0

    def test_float_allclose(self):
        comm = Communicator(Torus2D(2, 2), "multitree")
        rng = np.random.default_rng(7)
        data = rng.standard_normal((4, 100))
        out, _ = comm.all_reduce(data)
        assert np.allclose(out, data.sum(axis=0)[np.newaxis, :].repeat(4, 0))

    @pytest.mark.parametrize("length", [1, 3, 7, 15, 17, 100])
    def test_odd_lengths(self, length):
        # Lengths smaller than / misaligned with the chunk count still
        # reduce exactly (narrow chunks collapse to zero-width slices).
        comm = Communicator(Torus2D(4, 4), "multitree")
        data = np.arange(16 * length, dtype=np.int64).reshape(16, length)
        out, _ = comm.all_reduce(data)
        assert np.array_equal(out, np.tile(data.sum(axis=0), (16, 1)))

    def test_input_not_mutated(self):
        comm = Communicator(Torus2D(2, 2), "ring")
        data = np.ones((4, 8), dtype=np.int64)
        original = data.copy()
        comm.all_reduce(data)
        assert np.array_equal(data, original)

    def test_bad_shape_rejected(self):
        comm = Communicator(Torus2D(2, 2))
        with pytest.raises(ValueError):
            comm.all_reduce(np.ones((3, 8)))
        with pytest.raises(ValueError):
            comm.all_reduce(np.ones((4, 0)))


class TestTiming:
    def test_prediction_cached(self):
        comm = Communicator(Torus2D(4, 4))
        a = comm.predict(1 << 20)
        b = comm.predict(1 << 20)
        assert a is b

    def test_prediction_cache_skips_resimulation(self, monkeypatch):
        import repro.runtime as runtime_mod

        calls = []
        real = runtime_mod.simulate_allreduce

        def counting(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(runtime_mod, "simulate_allreduce", counting)
        comm = Communicator(Torus2D(2, 2))
        first = comm.predict(1 << 16)
        second = comm.predict(1 << 16)
        assert first is second
        assert len(calls) == 1  # the repeat came from the cache
        comm.predict(1 << 17)  # a new size does simulate
        assert len(calls) == 2

    def test_bad_bytes_rejected(self):
        with pytest.raises(ValueError):
            Communicator(Torus2D(2, 2)).predict(0)

    def test_flow_control_threads_through(self):
        topo = Torus2D(4, 4)
        pkt = Communicator(topo, "multitree").predict(64 << 20)
        msg = Communicator(topo, "multitree", flow_control=MessageBased()).predict(64 << 20)
        assert msg.time < pkt.time

    def test_multitree_faster_than_ring(self):
        topo = Torus2D(4, 4)
        ring = Communicator(topo, "ring").predict(16 << 20)
        mt = Communicator(topo, "multitree").predict(16 << 20)
        assert mt.time < ring.time

    def test_builder_kwargs_forwarded(self):
        comm = Communicator(Torus2D(4, 4), "multitree", priority="most-remaining")
        assert comm.schedule.metadata["priority"] == "most-remaining"

    def test_works_on_switch_topologies(self):
        comm = Communicator(FatTree(4, 4))
        data = np.ones((16, 32), dtype=np.int64)
        out, timing = comm.all_reduce(data)
        assert np.all(out == 16)
        assert timing.bandwidth > 0
