"""Tests for the scenario layer: one typed descriptor per experiment point.

Covers the canonical string grammar, dict/JSON round-trips (property-based
across the full topology x variant x engine grid), the resolved-identity
fingerprint that predictions, artifacts, and manifests share, the
algorithm-variant registry, and — critically — that the fingerprint schema
bump makes every old-format cache entry miss instead of serving stale
numbers.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.collectives import (
    AlgorithmVariant,
    build_schedule,
    get_variant,
    register_variant,
    resolve_variant,
    variant_names,
)
from repro.metrics import build_manifest
from repro.network.flowcontrol import MessageBased, PacketBased
from repro.scenario import (
    FINGERPRINT_SCHEMA_VERSION,
    Scenario,
    format_size,
    group_scenarios,
    parse_size,
    parse_sizes,
    point_key,
    scenario_set_fingerprint,
)
from repro.sweep import (
    PredictionCache,
    SweepJob,
    jobs_from_scenarios,
    prediction_key,
    run_job,
)
from repro.sweep.artifacts import artifact_key
from repro.topology.base import topology_fingerprint

TOPOLOGIES = [
    "torus-2x2",
    "torus-3x3",
    "mesh-2x3",
    "torus3d-2x2x2",
    "ring1d-5",
    "fattree-4x4",
    "bigraph-2x4",
]

scenario_strategy = st.builds(
    Scenario,
    topology=st.sampled_from(TOPOLOGIES),
    algorithm=st.sampled_from(variant_names()),
    data_bytes=st.integers(min_value=1, max_value=1 << 40),
    flow_control=st.sampled_from([None, "packet", "message"]),
    lockstep=st.booleans(),
    engine=st.sampled_from(["event", "lockstep"]),
    overrides=st.dictionaries(
        st.sampled_from(["flit_bytes", "link_latency_s", "num_vcs"]),
        st.one_of(
            st.integers(min_value=1, max_value=1 << 20),
            st.floats(min_value=1e-12, max_value=1e12,
                      allow_nan=False, allow_infinity=False),
        ),
        max_size=2,
    ),
)


class TestSizes:
    def test_parse_size_suffixes(self):
        assert parse_size("32K") == 32 * 1024
        assert parse_size("16MiB") == 16 << 20
        assert parse_size("1G") == 1 << 30
        assert parse_size("12345") == 12345

    def test_parse_size_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_size("lots")

    def test_format_size_prefers_exact_units(self):
        assert format_size(32 * 1024) == "32KiB"
        assert format_size(16 << 20) == "16MiB"
        assert format_size(1 << 30) == "1GiB"
        assert format_size(12345) == "12345"

    @given(st.integers(min_value=1, max_value=1 << 50))
    def test_format_parse_round_trip(self, data_bytes):
        assert parse_size(format_size(data_bytes)) == data_bytes

    def test_parse_sizes_comma_list(self):
        assert parse_sizes("32K,1M,16M") == (32 << 10, 1 << 20, 16 << 20)

    def test_parse_sizes_doubling_range(self):
        assert parse_sizes("32K..256K") == (
            32 << 10, 64 << 10, 128 << 10, 256 << 10,
        )
        # A non-power-of-two endpoint is included as the final bucket.
        assert parse_sizes("32K..96K") == (32 << 10, 64 << 10, 96 << 10)

    def test_parse_sizes_mixed_and_deduped(self):
        assert parse_sizes("16K, 32K..64K, 64K") == (
            16 << 10, 32 << 10, 64 << 10,
        )

    def test_parse_sizes_rejects_bad_input(self):
        with pytest.raises(ValueError):
            parse_sizes("1M..32K")  # descending range
        with pytest.raises(ValueError):
            parse_sizes("")
        with pytest.raises(ValueError):
            parse_sizes("32K..lots")


class TestGrammar:
    def test_parse_minimal(self):
        s = Scenario.parse("torus-4x4/multitree-msg/16MiB")
        assert s.topology == "torus-4x4"
        assert s.algorithm == "multitree-msg"
        assert s.data_bytes == 16 << 20
        assert s.flow_control is None
        assert s.lockstep and s.engine == "event" and s.overrides == ()

    def test_parse_mods(self):
        s = Scenario.parse("mesh-2x3/ring/1MiB@message,free,lockstep,flit_bytes=32")
        assert s.flow_control == "message"
        assert not s.lockstep
        assert s.engine == "lockstep"
        assert s.overrides == (("flit_bytes", 32),)

    def test_plus_separator_equivalent(self):
        assert Scenario.parse("torus-4x4/ring/1MiB@message+free") == \
            Scenario.parse("torus-4x4/ring/1MiB@message,free")

    def test_canonical_omits_defaults(self):
        assert str(Scenario(topology="torus-4x4", algorithm="multitree",
                            data_bytes=1 << 20)) == "torus-4x4/multitree/1MiB"

    def test_label_form_has_no_commas(self):
        s = Scenario.parse("torus-4x4/ring/1MiB@message,free,lockstep")
        assert "," not in s.label_form()
        assert Scenario.parse(s.label_form()) == s

    def test_slug_is_filesystem_safe(self):
        s = Scenario.parse("torus-4x4/ring/1MiB@message,flit_bytes=32")
        assert not set(s.slug()) & set("/@,+=")

    @pytest.mark.parametrize("bad", [
        "torus-4x4/ring",                      # missing size
        "torus-4x4//1MiB",                     # empty algorithm
        "hypercube-4x4/ring/1MiB",             # unknown topology kind
        "torus-4x4/warp/1MiB",                 # unknown variant
        "torus-4x4/ring/huge",                 # unparseable size
        "torus-4x4/ring/1MiB@wormhole",        # unknown mod
        "torus-4x4/ring/1MiB@warp_core=9",     # unknown override field
    ])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            Scenario.parse(bad)

    def test_constructor_validates(self):
        with pytest.raises(ValueError):
            Scenario(topology="torus-4x4", algorithm="ring", data_bytes=0)
        with pytest.raises(ValueError):
            Scenario(topology="torus-4x4", algorithm="ring", data_bytes=1,
                     engine="warp")
        with pytest.raises(ValueError):
            Scenario(topology="torus-4x4", algorithm="ring", data_bytes=1,
                     flow_control="wormhole")

    @settings(deadline=None)
    @given(scenario_strategy)
    def test_string_round_trip(self, scenario):
        assert Scenario.parse(str(scenario)) == scenario
        assert Scenario.parse(scenario.label_form()) == scenario

    @settings(deadline=None)
    @given(scenario_strategy)
    def test_dict_round_trip(self, scenario):
        assert Scenario.from_dict(scenario.to_dict()) == scenario
        # and through actual JSON, as manifests store it
        assert Scenario.from_dict(
            json.loads(json.dumps(scenario.to_dict()))
        ) == scenario


class TestRegistry:
    def test_builtin_variants_cover_every_builder(self):
        names = variant_names()
        assert "multitree" in names and "multitree-msg" in names
        assert "ring" in names

    def test_multitree_msg_resolution(self):
        builder, fc, label = resolve_variant("multitree-msg")
        assert builder == "multitree"
        assert fc == MessageBased()
        assert label == "multitree-msg"

    def test_identity_variant_defaults_to_packet(self):
        builder, fc, _label = resolve_variant("ring")
        assert builder == "ring"
        assert fc == PacketBased()

    def test_pinned_flow_control_rejects_contradiction(self):
        with pytest.raises(ValueError):
            get_variant("multitree-msg").flow_control_factory("packet")

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            get_variant("warp")

    def test_register_and_use_in_scenario(self):
        try:
            register_variant(AlgorithmVariant(
                name="ring-msg-test", builder="ring", flow_control="message",
            ))
            s = Scenario.parse("torus-2x2/ring-msg-test/1MiB")
            resolved = s.resolve()
            assert resolved.builder == "ring"
            assert resolved.flow_control == MessageBased()
            # resolved identity: same fingerprint as the explicit spelling
            assert s.fingerprint() == Scenario.parse(
                "torus-2x2/ring/1MiB@message"
            ).fingerprint()
        finally:
            from repro.collectives.variants import _VARIANTS
            _VARIANTS.pop("ring-msg-test", None)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_variant(AlgorithmVariant(name="multitree-msg",
                                              builder="multitree"))

    def test_unknown_builder_rejected(self):
        with pytest.raises(ValueError):
            register_variant(AlgorithmVariant(name="warp-test", builder="warp"))


class TestFingerprint:
    def test_variant_spellings_share_identity(self):
        named = Scenario.parse("torus-4x4/multitree-msg/1MiB")
        explicit = Scenario.parse("torus-4x4/multitree/1MiB@message")
        assert named.fingerprint() == explicit.fingerprint()
        assert named.cache_key() == explicit.cache_key()
        assert named.artifact_key() == explicit.artifact_key()

    @pytest.mark.parametrize("other", [
        "torus-2x2/multitree/1MiB",            # topology
        "torus-4x4/ring/1MiB",                 # algorithm
        "torus-4x4/multitree/2MiB",            # size
        "torus-4x4/multitree/1MiB@message",    # flow control
        "torus-4x4/multitree/1MiB@free",       # lockstep
        "torus-4x4/multitree/1MiB@lockstep",   # engine
        "torus-4x4/multitree/1MiB@flit_bytes=32",  # override
    ])
    def test_every_axis_changes_fingerprint(self, other):
        base = Scenario.parse("torus-4x4/multitree/1MiB")
        assert base.fingerprint() != Scenario.parse(other).fingerprint()

    def test_prediction_key_shim_matches_cache_key(self):
        s = Scenario.parse("torus-2x2/multitree-msg/1MiB")
        topo = s.build_topology()
        assert prediction_key(
            topo, "multitree", MessageBased(), 1 << 20
        ) == s.cache_key(topo)

    def test_artifact_key_shim_matches_scenario(self):
        s = Scenario.parse("torus-2x2/multitree-msg/1MiB")
        topo = s.build_topology()
        assert artifact_key(topo, "multitree") == s.artifact_key(topo)

    def test_point_key_embeds_schema_version(self):
        s = Scenario.parse("torus-2x2/ring/1MiB")
        assert s.cache_key().startswith("v%d|" % FINGERPRINT_SCHEMA_VERSION)

    def test_set_fingerprint_order_independent(self):
        a = Scenario.parse("torus-2x2/ring/1MiB")
        b = Scenario.parse("torus-2x2/multitree/1MiB")
        assert scenario_set_fingerprint([a, b]) == scenario_set_fingerprint([b, a])
        assert scenario_set_fingerprint([a]) == a.fingerprint()


class TestStaleCache:
    def test_old_schema_keys_are_not_reused(self, tmp_path):
        """A v2-format cache entry must miss under the v3 scheme.

        Seeds the cache with a poisoned prediction stored under the exact
        key format the previous schema produced; a sweep over the same
        physical point must re-simulate instead of serving the poison.
        """
        s = Scenario.parse("torus-2x2/multitree-msg/64KiB")
        topo = s.build_topology()
        fc = s.resolve().flow_control
        old_key = "v2|%s|%s|%s|%d|%s|%s" % (
            topology_fingerprint(topo), "multitree", repr(fc),
            64 * 1024, "lockstep", "event",
        )
        assert old_key != s.cache_key(topo)
        cache = PredictionCache(str(tmp_path / "cache.json"))
        cache.put(old_key, time=1.0, bandwidth=1e99, max_queue_delay=0.0)
        job = SweepJob.from_scenarios([s])
        sweep = run_job(job, cache=cache)
        assert sweep.points[0].bandwidth < 1e12  # physical, not poison
        assert cache.get(s.cache_key(topo))["bandwidth"] < 1e12

    def test_warm_v3_entry_is_served(self, tmp_path):
        s = Scenario.parse("torus-2x2/ring/64KiB")
        cache = PredictionCache(str(tmp_path / "cache.json"))
        job = SweepJob.from_scenarios([s])
        first = run_job(job, cache=cache)
        hits_before = cache.hits
        second = run_job(job, cache=cache)
        assert cache.hits > hits_before
        assert second.points[0].bandwidth == first.points[0].bandwidth


class TestSweepIntegration:
    def test_jobs_from_scenarios_groups_by_series(self):
        scenarios = [
            Scenario.parse("torus-2x2/ring/32KiB"),
            Scenario.parse("torus-2x2/ring/64KiB"),
            Scenario.parse("torus-2x2/multitree/32KiB"),
        ]
        jobs = jobs_from_scenarios(scenarios)
        assert len(jobs) == 2
        assert jobs[0].algorithm == "ring" and jobs[0].sizes == (32768, 65536)
        assert jobs[1].algorithm == "multitree"

    def test_group_scenarios_preserves_order(self):
        a = Scenario.parse("torus-2x2/ring/32KiB")
        b = Scenario.parse("torus-2x2/multitree/32KiB")
        c = Scenario.parse("torus-2x2/ring/64KiB")
        assert group_scenarios([a, b, c]) == [[a, c], [b]]

    def test_sweepjob_round_trips_through_scenarios(self):
        job = SweepJob(topology="torus-2x2", algorithm="multitree-msg",
                       sizes=(32768, 65536))
        assert SweepJob.from_scenarios(job.scenarios()) == job

    def test_mixed_axes_rejected(self):
        with pytest.raises(ValueError):
            SweepJob.from_scenarios([
                Scenario.parse("torus-2x2/ring/32KiB"),
                Scenario.parse("torus-4x4/ring/64KiB"),
            ])

    def test_resolved_schedule_matches_variant(self):
        s = Scenario.parse("mesh-2x2/multitree-msg/32KiB")
        resolved = s.resolve()
        schedule = build_schedule(resolved.builder, s.build_topology())
        assert schedule.algorithm == "multitree"


class TestManifestFingerprint:
    def test_manifest_uses_scenario_set_fingerprint(self):
        scenarios = [Scenario.parse("torus-4x4/multitree-msg/1MiB")]
        record = build_manifest(
            command="sweep", argv=["sweep"], labels={}, wall_time_s=0.1,
            scenarios=scenarios,
        )
        assert record["fingerprint"] == scenarios[0].fingerprint()
        assert record["scenarios"] == ["torus-4x4/multitree-msg/1MiB"]

    def test_manifest_without_scenarios_keeps_argv_digest(self):
        record = build_manifest(
            command="trees", argv=["trees"], labels={}, wall_time_s=0.1,
        )
        assert record["scenarios"] is None
        assert len(record["fingerprint"]) == 16


class TestCli:
    def test_scenario_subcommand(self, capsys):
        assert main(["scenario", "torus-4x4/multitree-msg/16MiB"]) == 0
        out = capsys.readouterr().out
        assert "fingerprint" in out and "builder=multitree" in out

    def test_scenario_subcommand_json(self, capsys):
        assert main(["scenario", "torus-4x4/multitree-msg/1MiB", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        expected = Scenario.parse("torus-4x4/multitree-msg/1MiB")
        assert payload["fingerprint"] == expected.fingerprint()
        assert payload["canonical"] == str(expected)
        assert payload["resolved"]["builder"] == "multitree"

    def test_scenario_subcommand_rejects_garbage(self):
        with pytest.raises(SystemExit):
            main(["scenario", "torus-4x4/warp/1MiB"])

    def test_sweep_scenario_flag(self, capsys):
        assert main([
            "sweep", "--scenario", "torus-2x2/multitree-msg/32KiB",
            "--scenario", "torus-2x2/ring/32KiB",
        ]) == 0
        out = capsys.readouterr().out
        assert "torus-2x2" in out
        assert "multitree-msg" in out

    def test_trace_scenario_flag(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main([
            "trace", "--scenario", "mesh-2x2/ring/32KiB", "--output",
            str(tmp_path / "t.json"),
        ]) == 0
        out = capsys.readouterr().out
        assert "simulated finish time" in out

    def test_list_enumerates_registered_variants(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "(+ multitree-msg)" not in out
        for name in variant_names():
            assert name in out
        assert "TOPOLOGY[@LINKMOD+...]/ALGORITHM/SIZE" in out
