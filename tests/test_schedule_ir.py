"""Unit tests for the schedule IR (ChunkRange, CommOp, Schedule)."""

from fractions import Fraction

import pytest

from repro.collectives import build_schedule
from repro.collectives.schedule import ChunkRange, CommOp, OpKind, Schedule
from repro.topology import Torus2D


class TestChunkRange:
    def test_nth_of(self):
        c = ChunkRange.nth_of(2, 4)
        assert c.lo == Fraction(1, 2)
        assert c.hi == Fraction(3, 4)
        assert c.fraction == Fraction(1, 4)

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            ChunkRange(Fraction(1, 2), Fraction(1, 2))
        with pytest.raises(ValueError):
            ChunkRange(Fraction(3, 4), Fraction(1, 2))
        with pytest.raises(ValueError):
            ChunkRange(Fraction(0), Fraction(3, 2))

    def test_overlap(self):
        a = ChunkRange(Fraction(0), Fraction(1, 2))
        b = ChunkRange(Fraction(1, 4), Fraction(3, 4))
        c = ChunkRange(Fraction(1, 2), Fraction(1))
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not a.overlaps(c)  # half-open intervals: [0,1/2) vs [1/2,1)

    def test_contains(self):
        outer = ChunkRange(Fraction(0), Fraction(1))
        inner = ChunkRange(Fraction(1, 4), Fraction(1, 2))
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_bytes_of(self):
        c = ChunkRange.nth_of(0, 8)
        assert c.bytes_of(1024) == 128.0

    def test_unit_span(self):
        c = ChunkRange(Fraction(1, 4), Fraction(1, 2))
        assert c.unit_span(8) == (2, 4)

    def test_unit_span_misaligned_raises(self):
        c = ChunkRange(Fraction(1, 3), Fraction(2, 3))
        with pytest.raises(ValueError):
            c.unit_span(8)


class TestCommOp:
    def test_self_send_rejected(self):
        with pytest.raises(ValueError):
            CommOp(OpKind.REDUCE, 1, 1, ChunkRange.nth_of(0, 4), step=1)

    def test_zero_step_rejected(self):
        with pytest.raises(ValueError):
            CommOp(OpKind.REDUCE, 0, 1, ChunkRange.nth_of(0, 4), step=0)


class TestScheduleQueries:
    @pytest.fixture()
    def ring16(self):
        return build_schedule("ring", Torus2D(4, 4))

    def test_num_steps(self, ring16):
        assert ring16.num_steps == 30  # 2 * (16 - 1)

    def test_granularity(self, ring16):
        assert ring16.granularity == 16

    def test_ops_sorted_by_step(self, ring16):
        steps = [op.step for op in ring16.ops]
        assert steps == sorted(steps)

    def test_steps_iterator_partitions_ops(self, ring16):
        total = sum(len(ops) for _, ops in ring16.steps())
        assert total == len(ring16.ops)

    def test_ops_at_step(self, ring16):
        assert len(ring16.ops_at_step(1)) == 16  # one send per node

    def test_ops_from_and_to(self, ring16):
        assert len(ring16.ops_from(0)) == 30
        assert len(ring16.ops_to(0)) == 30

    def test_bytes_sent_per_node(self, ring16):
        sent = ring16.bytes_sent_per_node(16 * 1024)
        # Each node forwards 30 chunks of 1 KiB.
        assert all(abs(v - 30 * 1024) < 1e-6 for v in sent.values())

    def test_total_data_fraction(self, ring16):
        # 16 nodes x 30 chunk sends of 1/16 each.
        assert ring16.total_data_fraction() == Fraction(30 * 16, 16)

    def test_check_endpoints_accepts_valid(self, ring16):
        ring16.check_endpoints()

    def test_check_endpoints_rejects_invalid(self):
        topo = Torus2D(2, 2)
        bad = Schedule(
            topology=topo,
            ops=[CommOp(OpKind.REDUCE, 0, 99, ChunkRange.nth_of(0, 4), step=1)],
            algorithm="bad",
        )
        with pytest.raises(ValueError):
            bad.check_endpoints()

    def test_max_step_link_overlap_contention_free(self, ring16):
        assert ring16.max_step_link_overlap() == 1

    def test_route_of_uses_topology(self, ring16):
        op = ring16.ops[0]
        assert ring16.route_of(op) == ring16.topology.route(op.src, op.dst)
