"""repro.serve: planner frontiers, prediction service, trace replay."""

import json
import threading
import time
import urllib.error
import urllib.request
from urllib.parse import quote

import pytest

from repro.scenario import Scenario, parse_sizes
from repro.serve import (
    PredictionService,
    RequestLog,
    WorkloadSpec,
    load_trace,
    make_server,
    pareto_frontier,
    plan,
    record_trace,
    replay,
    replay_http,
    workload_trace,
)
from repro.sweep import ArtifactStore, PredictionCache

KiB = 1024
TOPOLOGY = "torus-4x4"
SIZES = (32 * KiB, 128 * KiB)
ALGOS = ("ring", "multitree")


def small_spec(**overrides):
    kwargs = dict(topology=TOPOLOGY, sizes=SIZES, algorithms=ALGOS)
    kwargs.update(overrides)
    return WorkloadSpec(**kwargs)


class TestParetoFrontier:
    # Synthetic points: (latency, bandwidth) with min/max senses.
    OBJECTIVES = ((lambda p: p[0], "min"), (lambda p: p[1], "max"))

    def test_dominated_points_removed(self):
        points = [(1.0, 10.0), (2.0, 5.0), (3.0, 20.0)]
        frontier = pareto_frontier(points, self.OBJECTIVES)
        # (2.0, 5.0) is beaten by (1.0, 10.0) on both axes.
        assert frontier == [(1.0, 10.0), (3.0, 20.0)]

    def test_exact_ties_all_kept(self):
        points = [(1.0, 10.0), (1.0, 10.0), (2.0, 5.0)]
        frontier = pareto_frontier(points, self.OBJECTIVES)
        assert frontier == [(1.0, 10.0), (1.0, 10.0)]

    def test_single_candidate_survives(self):
        assert pareto_frontier([(7.0, 1.0)], self.OBJECTIVES) == [(7.0, 1.0)]

    def test_empty_input(self):
        assert pareto_frontier([], self.OBJECTIVES) == []

    def test_order_is_deterministic(self):
        points = [(3.0, 20.0), (1.0, 10.0), (2.0, 15.0)]
        frontier = pareto_frontier(points, self.OBJECTIVES)
        assert frontier == pareto_frontier(list(reversed(points)), self.OBJECTIVES)
        assert frontier[0] == (1.0, 10.0)

    def test_bad_sense_rejected(self):
        with pytest.raises(ValueError):
            pareto_frontier([(1.0,)], ((lambda p: p[0], "upward"),))


class TestWorkloadSpec:
    def test_from_query_round_trip(self):
        spec = WorkloadSpec.from_query(
            {
                "topology": TOPOLOGY,
                "sizes": "32K,128K",
                "algorithms": "ring,multitree",
                "engine": "lockstep",
            }
        )
        assert spec == small_spec(engine="lockstep")

    def test_engine_defaults_to_batched_vectorized(self):
        spec = WorkloadSpec.from_query(
            {"topology": TOPOLOGY, "sizes": "32K,128K"}
        )
        assert spec.engine == "lockstep-vec"

    def test_from_query_range_grammar_matches_cli(self):
        spec = WorkloadSpec.from_query(
            {"topology": TOPOLOGY, "sizes": "32K..256K"}
        )
        assert spec.sizes == parse_sizes("32K..256K")
        assert spec.sizes == (32 * KiB, 64 * KiB, 128 * KiB, 256 * KiB)

    def test_from_query_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown plan parameter"):
            WorkloadSpec.from_query(
                {"topology": TOPOLOGY, "sizes": "32K", "sises": "1M"}
            )

    def test_from_query_requires_topology_and_sizes(self):
        with pytest.raises(ValueError):
            WorkloadSpec.from_query({"topology": TOPOLOGY})

    def test_empty_algorithms_means_all_variants(self):
        spec = WorkloadSpec(topology=TOPOLOGY, sizes=SIZES)
        assert "ring" in spec.candidate_algorithms()
        assert "hdrm" in spec.candidate_algorithms()

    def test_candidates_sorted_by_variant(self):
        candidates = small_spec().candidates()
        assert [c.algorithm for c in candidates] == [
            "multitree", "multitree", "ring", "ring",
        ]
        assert all(c.data_bytes in SIZES for c in candidates)


class TestPlanner:
    def test_frontier_carries_canonical_identity(self, tmp_path):
        result = plan(small_spec())
        assert len(result.buckets) == len(SIZES)
        for bucket in result.buckets:
            assert bucket.candidates == len(ALGOS)
            assert bucket.frontier
            for entry in bucket.frontier:
                scenario = Scenario.parse(entry.scenario)
                assert str(scenario) == entry.scenario
                assert scenario.fingerprint() == entry.fingerprint
                assert entry.time > 0 and entry.bandwidth > 0

    def test_incompatible_variants_skipped_not_fatal(self):
        result = plan(small_spec(algorithms=("ring", "hdrm")))
        assert [s["algorithm"] for s in result.skipped] == ["hdrm"]
        assert "BiGraph" in result.skipped[0]["reason"]
        for bucket in result.buckets:
            assert bucket.candidates == 1  # only ring evaluated

    def test_second_plan_is_pure_cache_hits(self, tmp_path):
        cache = PredictionCache(str(tmp_path / "cache.json"))
        artifacts = ArtifactStore(str(tmp_path / "artifacts"))
        spec = small_spec()
        cold = plan(spec, cache=cache, artifacts=artifacts)
        assert cold.simulated == len(ALGOS) * len(SIZES)
        warm = plan(spec, cache=cache, artifacts=artifacts)
        assert warm.simulated == 0
        assert warm.cache_hits == len(ALGOS) * len(SIZES)
        # Identical answer, warm or cold.
        assert warm.to_dict()["buckets"] == cold.to_dict()["buckets"]
        assert warm.fingerprint() == cold.fingerprint()

    def test_to_dict_and_table_render(self):
        result = plan(small_spec())
        payload = result.to_dict()
        assert payload["topology"] == TOPOLOGY
        assert payload["stats"]["candidates"] == len(ALGOS) * len(SIZES)
        text = result.format_table()
        assert "frontier" in text
        for bucket in result.buckets:
            assert bucket.size in text


class TestPredictionService:
    def test_blocking_predict_then_warm_hit(self, tmp_path):
        service = PredictionService(str(tmp_path / "state"), workers=0)
        try:
            scenario = Scenario.parse("torus-4x4/ring/32KiB@lockstep")
            entry, source = service.predict(scenario, block=True)
            assert source == "simulated" and entry["time"] > 0
            entry2, source2 = service.predict(scenario)
            assert source2 == "cache" and entry2 == entry
        finally:
            service.close()

    def test_cache_persists_across_restarts(self, tmp_path):
        state = str(tmp_path / "state")
        scenario = Scenario.parse("torus-4x4/ring/32KiB@lockstep")
        first = PredictionService(state, workers=0)
        first.predict(scenario, block=True)
        first.close()
        second = PredictionService(state, workers=0)
        try:
            _entry, source = second.predict(scenario)
            assert source == "cache"
        finally:
            second.close()

    def test_background_warming(self, tmp_path):
        service = PredictionService(str(tmp_path / "state"), workers=1)
        try:
            scenario = Scenario.parse("torus-4x4/ring/32KiB@lockstep")
            entry, source = service.predict(scenario)
            assert entry is None and source in ("enqueued", "warming")
            assert service.drain(timeout_s=30)
            _entry, source = service.predict(scenario)
            assert source == "cache"
        finally:
            service.close()

    def test_failed_compile_is_remembered(self, tmp_path):
        service = PredictionService(str(tmp_path / "state"), workers=1)
        try:
            scenario = Scenario.parse("torus-4x4/hdrm/32KiB@lockstep")
            service.predict(scenario)
            assert service.drain(timeout_s=30)
            entry, source = service.predict(scenario)
            assert entry is None and source == "failed"
            assert "BiGraph" in service.failure_reason(scenario.cache_key())
        finally:
            service.close()

    def test_identity_memo_matches_scenario(self, tmp_path):
        service = PredictionService(str(tmp_path / "state"), workers=0)
        try:
            scenario = Scenario.parse("torus-4x4/multitree-msg/1MiB")
            key, fingerprint = service.identity(scenario)
            assert key == scenario.cache_key()
            assert fingerprint == scenario.fingerprint()
            assert service.identity(scenario) == (key, fingerprint)  # memo
        finally:
            service.close()

    def test_bounded_queue_overloads(self, tmp_path):
        service = PredictionService(
            str(tmp_path / "state"), workers=0, queue_size=1
        )
        try:
            first = Scenario.parse("torus-4x4/ring/32KiB@lockstep")
            second = Scenario.parse("torus-4x4/ring/64KiB@lockstep")
            assert service.warm(first) == "enqueued"
            assert service.warm(first) == "warming"  # already inflight
            assert service.warm(second) == "overloaded"  # queue full, no worker
        finally:
            service.close()


@pytest.fixture()
def live_server(tmp_path):
    """A PredictionService behind a real HTTP server on an ephemeral port."""
    state = tmp_path / "state"
    log = RequestLog(str(state / "requests.jsonl"))
    service = PredictionService(str(state), workers=1, request_log=log)
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = "http://127.0.0.1:%d" % server.server_address[1]
    try:
        yield base, service
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
        service.close()


def http_get(url):
    """(status, parsed-or-raw body, headers) without raising on 4xx/5xx."""
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            body, status, headers = response.read(), response.status, response.headers
    except urllib.error.HTTPError as error:
        body, status, headers = error.read(), error.code, error.headers
    text = body.decode()
    try:
        return status, json.loads(text), headers
    except ValueError:
        return status, text, headers


class TestHTTPEndpoints:
    WARM = "torus-4x4/ring/32KiB@lockstep"

    def test_healthz(self, live_server):
        base, _service = live_server
        status, payload, _ = http_get(base + "/healthz")
        assert status == 200
        assert payload["status"] == "ok" and payload["workers"] == 1

    def test_predict_warm_hit(self, live_server):
        base, service = live_server
        service.predict(Scenario.parse(self.WARM), block=True)
        status, payload, _ = http_get(
            base + "/predict?scenario=" + quote(self.WARM, safe="")
        )
        assert status == 200
        assert payload["source"] == "cache"
        assert payload["scenario"] == self.WARM
        assert payload["time"] > 0 and payload["bandwidth"] > 0

    def test_predict_cold_202_then_eventual_hit(self, live_server):
        base, service = live_server
        url = base + "/predict?scenario=" + quote(
            "torus-4x4/multitree/64KiB@lockstep", safe=""
        )
        status, payload, headers = http_get(url)
        assert status == 202
        assert payload["status"] in ("enqueued", "warming")
        assert int(headers["Retry-After"]) >= 1
        assert service.drain(timeout_s=30)
        status, payload, _ = http_get(url)
        assert status == 200 and payload["source"] == "cache"

    def test_predict_malformed_scenario_400(self, live_server):
        base, _service = live_server
        status, payload, _ = http_get(base + "/predict?scenario=not-a-scenario")
        assert status == 400 and "error" in payload
        status, payload, _ = http_get(base + "/predict")
        assert status == 400 and "scenario" in payload["error"]

    def test_predict_uncompilable_scenario_422(self, live_server):
        base, service = live_server
        url = base + "/predict?scenario=" + quote(
            "torus-4x4/hdrm/32KiB@lockstep", safe=""
        )
        assert http_get(url)[0] == 202
        assert service.drain(timeout_s=30)
        status, payload, _ = http_get(url)
        assert status == 422 and "BiGraph" in payload["error"]

    def test_unknown_endpoint_404(self, live_server):
        base, _service = live_server
        status, payload, _ = http_get(base + "/nope")
        assert status == 404 and "/predict" in payload["endpoints"]

    def test_plan_endpoint_warms_then_answers(self, live_server):
        base, service = live_server
        url = (
            base + "/plan?topology=torus-4x4&sizes=32K,128K"
            "&algorithms=ring,multitree"
        )
        status, payload, _ = http_get(url)
        assert status == 202 and payload["status"] == "warming"
        assert payload["missing"] == 4
        assert service.drain(timeout_s=60)
        status, payload, _ = http_get(url)
        assert status == 200
        assert payload["stats"]["simulated"] == 0
        assert payload["stats"]["cache_hits"] == 4
        assert len(payload["buckets"]) == 2

    def test_plan_unknown_param_400(self, live_server):
        base, _service = live_server
        status, payload, _ = http_get(base + "/plan?topology=torus-4x4&oops=1")
        assert status == 400 and "unknown plan parameter" in payload["error"]

    def test_metrics_exposition(self, live_server):
        base, _service = live_server
        http_get(base + "/healthz")
        # Request counters increment after the response is sent; poll
        # until the /healthz hit above is visible.
        deadline = time.monotonic() + 5
        while True:
            status, text, headers = http_get(base + "/metrics")
            if (
                '{endpoint="/healthz",status="200"}' in text
                or time.monotonic() > deadline
            ):
                break
            time.sleep(0.01)
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "repro_serve_requests_total" in text
        assert '{endpoint="/healthz",status="200"}' in text

    def test_request_log_is_valid_jsonl(self, live_server):
        base, service = live_server
        service.predict(Scenario.parse(self.WARM), block=True)
        http_get(base + "/predict?scenario=" + quote(self.WARM, safe=""))
        http_get(base + "/healthz")
        # Records are appended after the response body is sent; give the
        # handler threads a moment to finish their bookkeeping.
        deadline = time.monotonic() + 5
        while (
            service.request_log.records_written < 2
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        with open(service.request_log.path) as fh:
            records = [json.loads(line) for line in fh if line.strip()]
        assert len(records) >= 2
        for record in records:
            assert record["schema"] == 1
            assert record["endpoint"].startswith("/")
            assert record["status"] in (200, 202, 400, 404, 422, 503)
        predicts = [r for r in records if r["endpoint"] == "/predict"]
        assert predicts and predicts[-1]["source"] == "cache"
        assert predicts[-1]["scenario"] == self.WARM


class TestReplay:
    def test_record_load_round_trip(self, tmp_path):
        scenarios = workload_trace(TOPOLOGY, SIZES, ALGOS)
        path = str(tmp_path / "trace.jsonl")
        written = record_trace(path, scenarios, repeat=2)
        assert written == 2 * len(scenarios)
        loaded = load_trace(path)
        assert loaded == list(scenarios) * 2

    def test_load_rejects_malformed_records(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"schema": 1, "scenario": "nope"}\n')
        with pytest.raises(ValueError, match="bad trace record"):
            load_trace(str(path))

    def test_workload_trace_is_deterministic(self):
        a = workload_trace(TOPOLOGY, SIZES, ("ring", "multitree"))
        b = workload_trace(TOPOLOGY, SIZES, ("multitree", "ring"))
        assert a == b  # sorted algorithm order, not call order

    def test_in_process_replay_cold_then_warm(self, tmp_path):
        service = PredictionService(str(tmp_path / "state"), workers=0)
        try:
            scenarios = workload_trace(TOPOLOGY, SIZES, ALGOS)
            cold = replay(service, scenarios, block=True)
            assert cold.queries == len(scenarios)
            assert cold.hits == 0 and cold.misses == len(scenarios)
            warm = replay(service, scenarios)
            assert warm.hits == len(scenarios) and warm.errors == 0
            assert warm.hit_rate == 1.0
            assert warm.p50_s <= warm.p99_s
            payload = warm.to_dict()
            assert payload["qps"] > 0 and payload["hit_rate"] == 1.0
            assert "QPS" in warm.format()
        finally:
            service.close()

    def test_http_replay_counts_hits(self, live_server, tmp_path):
        base, service = live_server
        scenarios = workload_trace(TOPOLOGY, (32 * KiB,), ("ring",))
        replay(service, scenarios, block=True)  # prewarm
        stats = replay_http(base, scenarios * 3)
        assert stats.queries == 3
        assert stats.hits == 3 and stats.errors == 0
