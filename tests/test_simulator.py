"""Tests for the discrete-event network simulator."""

import pytest

from repro.network import Message, MessageBased, NetworkSimulator, PacketBased
from repro.network.flowcontrol import FlowControl
from repro.topology import FatTree, Torus2D


class IdealFlow(FlowControl):
    """Zero-overhead flow control for exact timing arithmetic in tests."""

    def wire_flits(self, payload_bytes):
        return max(1, int(payload_bytes // self.flit_bytes))


BW = 16e9
LAT = 150e-9


def _sim(topo=None, fc=None):
    return NetworkSimulator(topo or Torus2D(4, 4), fc or IdealFlow())


class TestSingleMessage:
    def test_one_hop_timing(self):
        sim = _sim()
        size = 16 * 1024
        res = sim.run([Message(0, 1, size, route=[(0, 1)])])
        assert res.finish_time == pytest.approx(LAT + size / BW, rel=1e-9)

    def test_multi_hop_pipelines(self):
        topo = Torus2D(4, 4)
        sim = _sim(topo)
        size = 16 * 1024
        route = topo.route(0, 2)  # two hops
        res = sim.run([Message(0, 2, size, route=route)])
        # Virtual cut-through: latency accumulates per hop, serialization
        # only once at the bottleneck.
        assert res.finish_time == pytest.approx(2 * LAT + size / BW, rel=1e-9)

    def test_not_before_delays_injection(self):
        sim = _sim()
        res = sim.run([Message(0, 1, 1024, route=[(0, 1)], not_before=5e-6)])
        assert res.timings[0].inject >= 5e-6


class TestContention:
    def test_two_messages_share_a_link_fifo(self):
        sim = _sim()
        size = 16 * 1024
        ser = size / BW
        res = sim.run(
            [
                Message(0, 1, size, route=[(0, 1)]),
                Message(0, 1, size, route=[(0, 1)]),
            ]
        )
        assert res.finish_time == pytest.approx(LAT + 2 * ser, rel=1e-9)
        assert res.max_queue_delay() == pytest.approx(ser, rel=1e-9)

    def test_disjoint_links_run_in_parallel(self):
        sim = _sim()
        size = 16 * 1024
        res = sim.run(
            [
                Message(0, 1, size, route=[(0, 1)]),
                Message(2, 3, size, route=[(2, 3)]),
            ]
        )
        assert res.finish_time == pytest.approx(LAT + size / BW, rel=1e-9)
        assert res.max_queue_delay() == 0.0

    def test_capacity_channels_carry_concurrently(self):
        topo = Torus2D(2, 4)  # width-2 torus: x-links have capacity 2
        sim = NetworkSimulator(topo, IdealFlow())
        x_nbr = topo.node_at(1, 0)
        size = 16 * 1024
        res = sim.run(
            [
                Message(0, x_nbr, size, route=[(0, x_nbr)]),
                Message(0, x_nbr, size, route=[(0, x_nbr)]),
            ]
        )
        assert res.finish_time == pytest.approx(LAT + size / BW, rel=1e-9)


class TestDependencies:
    def test_dependent_message_waits_for_delivery(self):
        sim = _sim()
        size = 16 * 1024
        ser = size / BW
        res = sim.run(
            [
                Message(0, 1, size, route=[(0, 1)]),
                Message(1, 2, size, route=[(1, 2)], deps=[0]),
            ]
        )
        assert res.timings[1].inject == pytest.approx(LAT + ser, rel=1e-9)
        assert res.finish_time == pytest.approx(2 * (LAT + ser), rel=1e-9)

    def test_circular_dependency_detected(self):
        sim = _sim()
        msgs = [
            Message(0, 1, 1024, route=[(0, 1)], deps=[1]),
            Message(1, 2, 1024, route=[(1, 2)], deps=[0]),
        ]
        with pytest.raises(RuntimeError, match="deadlock"):
            sim.run(msgs)

    def test_deadlock_reports_stuck_message_indices(self):
        # The cycle {1, 2} never becomes ready; message 0 still completes.
        sim = _sim()
        msgs = [
            Message(0, 1, 1024, route=[(0, 1)]),
            Message(1, 2, 1024, route=[(1, 2)], deps=[2]),
            Message(2, 3, 1024, route=[(2, 3)], deps=[1]),
        ]
        with pytest.raises(RuntimeError) as exc:
            sim.run(msgs)
        text = str(exc.value)
        assert "2 messages" in text
        assert "[1, 2]" in text

    def test_deadlock_on_self_dependency(self):
        sim = _sim()
        with pytest.raises(RuntimeError, match="deadlock"):
            sim.run([Message(0, 1, 1024, route=[(0, 1)], deps=[0])])

    def test_readiness_order_respected(self):
        """An unlocked-later but earlier-ready message wins FIFO arbitration."""
        sim = _sim()
        size = 160 * 1024
        res = sim.run(
            [
                Message(0, 1, size, route=[(0, 1)], not_before=1e-3),
                Message(0, 1, size, route=[(0, 1)], not_before=0.0),
            ]
        )
        assert res.timings[1].inject < res.timings[0].inject


class TestStatistics:
    def test_link_busy_accounting(self):
        sim = _sim()
        size = 16 * 1024
        res = sim.run([Message(0, 1, size, route=[(0, 1)])])
        assert res.link_busy[(0, 1)] == pytest.approx(size / BW, rel=1e-9)

    def test_mean_link_utilization_bounds(self):
        topo = Torus2D(4, 4)
        sim = NetworkSimulator(topo, IdealFlow())
        res = sim.run([Message(0, 1, 16 * 1024, route=[(0, 1)])])
        util = res.mean_link_utilization(topo)
        assert 0 < util < 1

    def test_flow_control_changes_wire_time(self):
        topo = Torus2D(4, 4)
        size = 1 << 20
        t_pkt = NetworkSimulator(topo, PacketBased()).run(
            [Message(0, 1, size, route=[(0, 1)])]
        ).finish_time
        t_msg = NetworkSimulator(topo, MessageBased()).run(
            [Message(0, 1, size, route=[(0, 1)])]
        ).finish_time
        assert t_pkt > t_msg
        assert t_pkt / t_msg == pytest.approx(1.0625, rel=1e-3)

    def test_empty_run(self):
        res = _sim().run([])
        assert res.finish_time == 0.0
        assert res.max_queue_delay() == 0.0


class TestWireAccounting:
    def test_zero_hop_message_puts_no_bytes_on_wire(self):
        # src == dst: no links traversed, so no wire bytes are charged.
        res = _sim().run([Message(0, 0, 16 * 1024, route=[])])
        assert res.total_wire_bytes == 0.0
        assert res.finish_time == 0.0
        assert res.link_busy == {}

    def test_wire_bytes_charged_once_per_traversed_link(self):
        topo = Torus2D(4, 4)
        sim = _sim(topo)
        size = 16 * 1024
        route = topo.route(0, 2)
        assert len(route) == 2
        res = sim.run([Message(0, 2, size, route=route)])
        assert res.total_wire_bytes == pytest.approx(size * 2)

    def test_mixed_zero_and_multi_hop(self):
        topo = Torus2D(4, 4)
        sim = _sim(topo)
        size = 16 * 1024
        res = sim.run(
            [
                Message(0, 0, size, route=[]),
                Message(0, 1, size, route=[(0, 1)]),
            ]
        )
        assert res.total_wire_bytes == pytest.approx(size)


class TestUtilizationEdgeCases:
    def test_zero_finish_time_yields_zero_utilization(self):
        # Only a zero-hop message: finish time is 0; no division blow-up.
        topo = Torus2D(2, 4)
        res = NetworkSimulator(topo, IdealFlow()).run(
            [Message(0, 0, 1024, route=[])]
        )
        assert res.finish_time == 0.0
        assert res.link_utilization(topo) == {key: 0.0 for key in topo.links}
        assert res.mean_link_utilization(topo) == 0.0

    def test_empty_run_zero_utilization(self):
        topo = Torus2D(4, 4)
        res = NetworkSimulator(topo, IdealFlow()).run([])
        assert res.link_utilization(topo) == {key: 0.0 for key in topo.links}
        assert res.mean_link_utilization(topo) == 0.0

    def test_utilization_reports_every_link_of_topology(self):
        # Regression: the "per link" promise covers idle links too — a run
        # that touches one link still reports 0.0 for every other link.
        topo = Torus2D(4, 4)
        res = NetworkSimulator(topo, IdealFlow()).run(
            [Message(0, 1, 16 * 1024, route=[(0, 1)])]
        )
        util = res.link_utilization(topo)
        assert set(util) == set(topo.links)
        assert util[(0, 1)] > 0.0
        assert all(v == 0.0 for key, v in util.items() if key != (0, 1))

    def test_mean_counts_idle_links(self):
        # One busy link out of the whole torus: the mean is the per-link
        # utilization scaled down by the idle rest of the topology.
        topo = Torus2D(4, 4)
        res = NetworkSimulator(topo, IdealFlow()).run(
            [Message(0, 1, 16 * 1024, route=[(0, 1)])]
        )
        util = res.link_utilization(topo)
        expected_mean = (
            util[(0, 1)]
            * topo.link(0, 1).capacity
            / topo.total_link_capacity()
        )
        assert res.mean_link_utilization(topo) == pytest.approx(expected_mean)
        assert res.mean_link_utilization(topo) < util[(0, 1)]
