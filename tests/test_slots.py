"""``slots=True`` on hot dataclasses: layout guarantees + bit-identity.

The hot per-message and per-op records (:class:`repro.network.Message`,
:class:`repro.network.MessageTiming`, :class:`repro.collectives.CommOp`)
carry ``slots=True`` to shrink per-instance memory and speed attribute
access in the simulator inner loops.  These tests pin the layout (no
``__dict__`` materializes) and — more importantly — assert the results
are bit-identical to the preserved seed implementations, so the layout
change provably altered nothing.
"""

from fractions import Fraction

import pytest

from repro.bench.reference import reference_run, reference_simulate_allreduce
from repro.collectives import build_schedule
from repro.collectives.schedule import ChunkRange, CommOp, OpKind
from repro.network import Message, MessageTiming, NetworkSimulator, PacketBased
from repro.ni.injector import build_messages, simulate_allreduce
from repro.topology import FatTree, Torus2D

MiB = 1 << 20


class TestSlotsLayout:
    def test_message_has_no_dict(self):
        msg = Message(0, 1, 1024.0, route=[(0, 1)])
        with pytest.raises(AttributeError):
            msg.scratch = 1
        assert not hasattr(msg, "__dict__")

    def test_message_timing_has_no_dict(self):
        timing = MessageTiming(0.0, 0.0, 1.0, 1.0)
        with pytest.raises(AttributeError):
            timing.scratch = 1
        assert not hasattr(timing, "__dict__")

    def test_comm_op_has_no_dict(self):
        op = CommOp(
            kind=OpKind.REDUCE,
            src=0,
            dst=1,
            chunk=ChunkRange(Fraction(0), Fraction(1, 4)),
            step=1,
        )
        with pytest.raises(AttributeError):
            object.__setattr__(op, "scratch", 1)
        assert not hasattr(op, "__dict__")

    def test_chunk_range_keeps_dict(self):
        """ChunkRange memoizes its float fraction in ``__dict__`` — it must
        NOT be slotted (see the note on :class:`CommOp`)."""
        chunk = ChunkRange(Fraction(0), Fraction(1, 4))
        assert hasattr(chunk, "__dict__")
        assert chunk.bytes_of(4.0) == 1.0
        assert chunk.__dict__.get("_float_fraction") == 0.25


class TestBitIdenticalResults:
    """Slotted classes flow through the whole pipeline unchanged."""

    def test_simulator_matches_reference(self):
        topo = Torus2D(4, 4)
        fc = PacketBased()
        schedule = build_schedule("multitree", topo)
        messages = build_messages(schedule, 2 * MiB, fc)
        fast = NetworkSimulator(topo, fc).run(messages)
        ref = reference_run(topo, fc, messages)
        assert fast.finish_time == ref.finish_time
        assert fast.timings == ref.timings
        assert fast.link_busy == ref.link_busy
        assert fast.total_wire_bytes == ref.total_wire_bytes

    def test_allreduce_matches_reference(self):
        for topo, algorithm in (
            (Torus2D(4, 4), "ring"),
            (FatTree(4, 4), "multitree"),
        ):
            schedule = build_schedule(algorithm, topo)
            fast = simulate_allreduce(schedule, 1 * MiB)
            ref = reference_simulate_allreduce(schedule, 1 * MiB)
            assert fast.time == ref.finish_time
            assert fast.simulation.finish_time == ref.finish_time
            assert fast.simulation.timings == ref.timings
            assert fast.simulation.link_busy == ref.link_busy
