"""Streaming CSR compiler: exact equality with the object-path compiler.

The oracle is ``CompiledSchedule.to_dict()`` — the full serialized form:
op order, routes, dependency CSR, fractions, serialization profile and
metadata must all be exactly ``==`` between
:func:`repro.collectives.streaming.compile_multitree` (which never
materializes per-op objects) and ``compile_schedule(multitree_allreduce(
...))`` (which does), across the golden-equivalence topology grid and
both construction priorities.
"""

import numpy as np
import pytest

from repro.collectives.compiled import compile_schedule
from repro.collectives.multitree import build_forest, multitree_allreduce
from repro.collectives.streaming import compile_forest, compile_multitree
from repro.network.flowcontrol import MessageBased
from repro.topology.bigraph import BiGraph
from repro.topology.fattree import FatTree
from repro.topology.fattree3 import FatTree3
from repro.topology.grid import Mesh2D, Torus2D
from repro.topology.ring1d import Ring1D
from repro.topology.torus3d import Torus3D

MiB = 1 << 20

GRID = [
    Torus2D(4, 4),
    Torus2D(4, 8),
    Mesh2D(4, 4),
    Ring1D(8),
    Torus3D(4, 4, 4),
    FatTree(4, 4),
    FatTree3(2, 2, 4),
    BiGraph(4, 8),
]


def _object_path(topology, priority):
    return compile_schedule(multitree_allreduce(topology, priority))


@pytest.mark.parametrize(
    "topology", GRID, ids=lambda topo: topo.name
)
@pytest.mark.parametrize("priority", ["root-id", "most-remaining"])
class TestStreamingEquality:
    def test_to_dict_round_trip_is_identical(self, topology, priority):
        want = _object_path(topology, priority).to_dict()
        got = compile_multitree(topology, priority).to_dict()
        assert got == want

    def test_simulation_is_identical(self, topology, priority):
        ref = _object_path(topology, priority)
        fast = compile_multitree(topology, priority)
        for size in (64 * 1024, 3 * MiB):
            a = ref.simulate(size, MessageBased())
            b = fast.simulate(size, MessageBased())
            assert a.time == b.time
            assert a.bandwidth == b.bandwidth


class TestCompileForest:
    def test_release_drops_forest_storage(self):
        topo = Torus2D(4, 4)
        forest = build_forest(topo)
        keep = compile_forest(forest, topo)
        released = build_forest(topo)
        got = compile_forest(released, topo, release=True)
        assert got.to_dict() == keep.to_dict()
        assert released.edge_parent is None
        assert released.orders is None

    def test_columns_are_arrays_not_lists(self):
        compiled = compile_multitree(Torus2D(4, 4))
        for name in ("srcs", "dsts", "steps", "route_off", "route_val",
                     "dep_off", "dep_val"):
            col = getattr(compiled, name)
            assert not isinstance(col, list), name
            assert np.asarray(col).ndim == 1, name

    def test_broadcast_fractions_share_storage(self):
        compiled = compile_multitree(Torus2D(4, 4))
        assert np.asarray(compiled.frac_num).strides == (0,)
        assert np.asarray(compiled.frac_den).strides == (0,)
        # ... and still round-trip to the exact per-op lists.
        data = compiled.to_dict()
        assert data["frac_num"] == [1] * len(compiled)
        assert data["frac_den"] == [16] * len(compiled)

    def test_heterogeneous_bandwidth_ser_profile(self):
        # A non-uniform link bandwidth forces the chunked first-occurrence
        # scan (the homogeneous fast path cannot apply); the object path
        # remains the oracle.
        import dataclasses

        topo = Torus2D(4, 4)
        key = next(iter(topo.links))
        for k in (key, (key[1], key[0])):
            spec = topo._links[k]
            topo._links[k] = dataclasses.replace(
                spec, bandwidth=spec.bandwidth * 2
            )
        want = _object_path(topo, "root-id").to_dict()
        got = compile_multitree(topo, "root-id").to_dict()
        assert got == want
        # The premise of the test: more than one serialization bandwidth.
        assert len(set(want["ser_bandwidth"])) > 1
