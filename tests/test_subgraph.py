"""Tests for induced sub-topologies and schedule lifting (§VII-B)."""

import pytest

from repro.collectives import multitree_allreduce, ring_allreduce, verify_allreduce
from repro.ni import build_messages, simulate_allreduce
from repro.network import NetworkSimulator, PacketBased
from repro.topology import FatTree, InducedSubgraph, Torus2D, lift_schedule

MiB = 1 << 20


def _quadrant(torus, qx, qy, size=2):
    return InducedSubgraph(
        torus,
        [torus.node_at(qx * size + x, qy * size + y)
         for y in range(size) for x in range(size)],
    )


class TestConstruction:
    def test_renumbering(self):
        torus = Torus2D(4, 4)
        sub = _quadrant(torus, 1, 1)
        assert sub.num_nodes == 4
        assert sub.parent_node(0) == torus.node_at(2, 2)
        assert sub.sub_node(torus.node_at(2, 2)) == 0

    def test_only_member_links_kept(self):
        torus = Torus2D(4, 4)
        sub = _quadrant(torus, 0, 0)
        # A 2x2 corner of a 4x4 torus keeps only the 4 internal edges
        # (wrap links leave the member set).
        assert sub.total_link_capacity() == 8

    def test_disconnected_members_rejected(self):
        torus = Torus2D(4, 4)
        with pytest.raises(ValueError, match="connected"):
            InducedSubgraph(torus, [0, 10])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            InducedSubgraph(Torus2D(4, 4), [0, 1, 1])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            InducedSubgraph(Torus2D(4, 4), [0, 99])

    def test_switch_networks_rejected(self):
        with pytest.raises(ValueError):
            InducedSubgraph(FatTree(4, 4), [0, 1])

    def test_link_parameters_inherited(self):
        torus = Torus2D(4, 4, bandwidth=8e9, latency=1e-6)
        sub = _quadrant(torus, 0, 0)
        spec = sub.link(0, 1)
        assert spec.bandwidth == 8e9
        assert spec.latency == 1e-6


class TestRouting:
    def test_routes_stay_inside_subgraph(self):
        torus = Torus2D(8, 8)
        sub = InducedSubgraph(
            torus, [torus.node_at(x, y) for y in range(4) for x in range(4)]
        )
        for src in sub.nodes:
            for dst in sub.nodes:
                cur = src
                for (u, v) in sub.route(src, dst):
                    assert u == cur and sub.has_link(u, v)
                    cur = v
                if src != dst:
                    assert cur == dst

    def test_neighbor_preference_filtered(self):
        torus = Torus2D(4, 4)
        sub = _quadrant(torus, 0, 0)
        prefs = sub.neighbor_preference(0)
        assert all(0 <= p < sub.num_nodes for p in prefs)


class TestSchedulesOnSubgraphs:
    def test_multitree_correct_on_quadrant(self):
        torus = Torus2D(8, 8)
        sub = InducedSubgraph(
            torus, [torus.node_at(x, y) for y in range(4) for x in range(4)]
        )
        schedule = multitree_allreduce(sub)
        verify_allreduce(schedule)
        assert schedule.max_step_link_overlap() == 1

    def test_ring_correct_on_quadrant(self):
        torus = Torus2D(8, 8)
        sub = InducedSubgraph(
            torus, [torus.node_at(x, y) for y in range(2) for x in range(4)]
        )
        verify_allreduce(ring_allreduce(sub))


class TestLifting:
    def test_lifted_endpoints_in_parent(self):
        torus = Torus2D(4, 4)
        sub = _quadrant(torus, 1, 0)
        lifted = lift_schedule(multitree_allreduce(sub), sub)
        lifted.check_endpoints()
        members = {sub.parent_node(i) for i in sub.nodes}
        for op in lifted.ops:
            assert op.src in members and op.dst in members
            for (u, v) in op.route:
                assert torus.has_link(u, v)

    def test_lifted_schedule_simulates_identically(self):
        torus = Torus2D(4, 4)
        sub = _quadrant(torus, 0, 1)
        schedule = multitree_allreduce(sub)
        lifted = lift_schedule(schedule, sub)
        t_sub = simulate_allreduce(schedule, 4 * MiB).time
        t_lift = simulate_allreduce(lifted, 4 * MiB).time
        assert t_lift == pytest.approx(t_sub, rel=1e-9)

    def test_concurrent_groups_do_not_interfere(self):
        torus = Torus2D(4, 4)
        groups = [_quadrant(torus, qx, qy) for qx in range(2) for qy in range(2)]
        lifted = [lift_schedule(multitree_allreduce(g), g) for g in groups]
        messages = []
        for sched in lifted:
            messages.extend(build_messages(sched, 4 * MiB, PacketBased()))
        together = NetworkSimulator(torus, PacketBased()).run(messages)
        alone = simulate_allreduce(lifted[0], 4 * MiB)
        assert together.finish_time == pytest.approx(alone.time, rel=0.01)
