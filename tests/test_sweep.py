"""repro.sweep: prediction cache keying/persistence and the sweep runner."""

import json
import os
import warnings

import pytest

from repro.analysis import sweep_bandwidth
from repro.collectives import build_schedule
from repro.network import MessageBased, PacketBased
from repro.sweep import (
    PredictionCache,
    SweepJob,
    prediction_key,
    run_job,
    run_sweep,
    sweep_bandwidth_cached,
    topology_fingerprint,
)
from repro.topology import Ring1D, Torus2D

KiB = 1024
SIZES = (32 * KiB, 256 * KiB)


class TestPredictionKey:
    def test_key_varies_with_every_axis(self):
        torus = Torus2D(4, 4)
        base = prediction_key(torus, "multitree", PacketBased(), 32 * KiB, True)
        assert base != prediction_key(torus, "ring", PacketBased(), 32 * KiB, True)
        assert base != prediction_key(torus, "multitree", MessageBased(), 32 * KiB, True)
        assert base != prediction_key(torus, "multitree", PacketBased(), 64 * KiB, True)
        assert base != prediction_key(torus, "multitree", PacketBased(), 32 * KiB, False)
        assert base != prediction_key(
            Torus2D(4, 8), "multitree", PacketBased(), 32 * KiB, True
        )

    def test_fingerprint_sees_link_parameters(self):
        # Same shape, different link bandwidth -> different fingerprint.
        a = Ring1D(8)
        b = Ring1D(8, bandwidth=1e9)
        assert topology_fingerprint(a) != topology_fingerprint(b)
        assert topology_fingerprint(a) == topology_fingerprint(Ring1D(8))

    def test_flow_control_parameters_in_key(self):
        torus = Torus2D(4, 4)
        k256 = prediction_key(torus, "ring", PacketBased(), 32 * KiB, True)
        k64 = prediction_key(
            torus, "ring", PacketBased(payload_bytes=64), 32 * KiB, True
        )
        assert k256 != k64


class TestPredictionCache:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = PredictionCache(path)
        cache.put("k1", time=1.5e-5, bandwidth=2e9, max_queue_delay=0.0)
        cache.save()
        reloaded = PredictionCache(path)
        assert len(reloaded) == 1
        assert reloaded.get("k1")["time"] == 1.5e-5
        assert reloaded.hits == 1

    def test_corrupt_file_treated_as_empty(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json")
        cache = PredictionCache(str(path))
        assert len(cache) == 0

    def test_corrupt_file_warns(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json")
        with pytest.warns(RuntimeWarning, match="corrupt or truncated"):
            PredictionCache(str(path))
        # A missing file is a normal cold start: no warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            PredictionCache(str(tmp_path / "absent.json"))

    def test_save_merges_with_disk(self, tmp_path):
        path = str(tmp_path / "cache.json")
        a = PredictionCache(path)
        b = PredictionCache(path)
        a.put("ka", time=1.0, bandwidth=1.0, max_queue_delay=0.0)
        a.save()
        b.put("kb", time=2.0, bandwidth=2.0, max_queue_delay=0.0)
        b.save()  # must not clobber a's entry
        merged = PredictionCache(path)
        assert "ka" in merged and "kb" in merged

    def test_unwritten_save_is_noop(self, tmp_path):
        path = str(tmp_path / "never.json")
        PredictionCache(path).save()
        assert not (tmp_path / "never.json").exists()


class TestBatchedFlush:
    def test_saves_inside_batch_coalesce_to_one_write(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = PredictionCache(path)
        with cache.batched():
            for i in range(5):
                cache.put(
                    "k%d" % i, time=float(i), bandwidth=1.0,
                    max_queue_delay=0.0,
                )
                cache.save()  # deferred: one write at block exit
                assert not os.path.exists(path)
        assert os.path.exists(path)
        assert len(PredictionCache(path)) == 5

    def test_batch_flushes_on_error(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = PredictionCache(path)
        with pytest.raises(RuntimeError):
            with cache.batched():
                cache.put("k", time=1.0, bandwidth=1.0, max_queue_delay=0.0)
                cache.save()
                raise RuntimeError("mid-batch failure")
        # Work computed before the failure still persisted.
        assert "k" in PredictionCache(path)

    def test_nested_batches_flush_at_outermost_exit(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = PredictionCache(path)
        with cache.batched():
            with cache.batched():
                cache.put("k", time=1.0, bandwidth=1.0, max_queue_delay=0.0)
                cache.save()
            assert not os.path.exists(path)
        assert os.path.exists(path)

    def test_no_deferred_saves_means_no_write(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = PredictionCache(path)
        with cache.batched():
            pass
        assert not os.path.exists(path)

    def test_batch_is_per_thread(self, tmp_path):
        import threading

        path = str(tmp_path / "cache.json")
        cache = PredictionCache(path)
        written = {}

        def other_thread():
            cache.put("other", time=2.0, bandwidth=1.0, max_queue_delay=0.0)
            cache.save()  # not inside *this* thread's batch: writes now
            written["exists"] = os.path.exists(path)

        with cache.batched():
            cache.put("mine", time=1.0, bandwidth=1.0, max_queue_delay=0.0)
            cache.save()
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
        assert written["exists"] is True
        assert "mine" in PredictionCache(path)


class TestCachedSweep:
    def test_matches_uncached_sweep_exactly(self, tmp_path):
        topo = Torus2D(4, 4)
        schedule = build_schedule("multitree", topo)
        cache = PredictionCache(str(tmp_path / "c.json"))
        cached = sweep_bandwidth_cached(schedule, SIZES, PacketBased(), cache=cache)
        plain = sweep_bandwidth(schedule, SIZES, PacketBased())
        for c, p in zip(cached.points, plain.points):
            assert c.time == p.time
            assert c.bandwidth == p.bandwidth
            assert c.max_queue_delay == p.max_queue_delay

    def test_second_pass_is_all_hits(self, tmp_path):
        topo = Torus2D(4, 4)
        schedule = build_schedule("multitree", topo)
        cache = PredictionCache(str(tmp_path / "c.json"))
        first = sweep_bandwidth_cached(schedule, SIZES, PacketBased(), cache=cache)
        assert cache.misses == len(SIZES)
        warm = sweep_bandwidth_cached(schedule, SIZES, PacketBased(), cache=cache)
        assert cache.hits == len(SIZES)
        assert [p.time for p in warm.points] == [p.time for p in first.points]


class TestRunner:
    def test_multitree_msg_shorthand(self):
        sweep = run_job(SweepJob("torus-4x4", "multitree-msg", SIZES))
        assert sweep.algorithm == "multitree-msg"
        assert len(sweep.points) == len(SIZES)

    def test_unknown_flow_control_rejected(self):
        with pytest.raises(ValueError):
            SweepJob("torus-4x4", "ring", SIZES, flow_control="wormhole").resolve()

    def test_serial_and_parallel_agree(self, tmp_path):
        jobs = [
            SweepJob("torus-4x4", "ring", SIZES),
            SweepJob("torus-4x4", "multitree", SIZES),
        ]
        serial = run_sweep(jobs)
        parallel = run_sweep(jobs, processes=2,
                             cache_path=str(tmp_path / "c.json"))
        for s, p in zip(serial, parallel):
            assert s.algorithm == p.algorithm
            assert [pt.time for pt in s.points] == [pt.time for pt in p.points]
        # The parallel run persisted every computed point.
        entries = json.loads((tmp_path / "c.json").read_text())["entries"]
        assert len(entries) == len(jobs) * len(SIZES)

    def test_warm_cache_skips_construction(self, tmp_path):
        cache_path = str(tmp_path / "c.json")
        job = SweepJob("torus-4x4", "multitree", SIZES)
        cold = run_sweep([job], cache_path=cache_path)[0]
        cache = PredictionCache(cache_path)
        warm = run_job(job, cache)
        assert cache.hits == len(SIZES) and cache.misses == 0
        assert [p.bandwidth for p in warm.points] == [
            p.bandwidth for p in cold.points
        ]

    def test_empty_job_list(self):
        assert run_sweep([]) == []


class TestEngineKeying:
    def test_engine_in_key(self):
        torus = Torus2D(4, 4)
        event = prediction_key(
            torus, "ring", PacketBased(), 32 * KiB, True, engine="event"
        )
        lockstep = prediction_key(
            torus, "ring", PacketBased(), 32 * KiB, True, engine="lockstep"
        )
        assert event != lockstep
        # Default is the event engine, matching run()'s default.
        assert event == prediction_key(torus, "ring", PacketBased(), 32 * KiB, True)

    def test_stale_event_entry_never_served_to_lockstep(self, tmp_path):
        """A point cached under engine="event" must be a miss for an
        engine="lockstep" query — the engines are bit-identical today, but
        the key must not *assume* that."""
        topo = Torus2D(4, 4)
        schedule = build_schedule("ring", topo)
        cache = PredictionCache(str(tmp_path / "c.json"))
        sweep_bandwidth_cached(
            schedule, SIZES, PacketBased(), cache=cache, engine="event"
        )
        assert cache.misses == len(SIZES)
        sweep_bandwidth_cached(
            schedule, SIZES, PacketBased(), cache=cache, engine="lockstep"
        )
        assert cache.hits == 0  # nothing leaked across the engine axis
        assert cache.misses == 2 * len(SIZES)

    def test_engines_agree_through_cache_layer(self, tmp_path):
        topo = Torus2D(4, 4)
        schedule = build_schedule("ring", topo)
        cache = PredictionCache(str(tmp_path / "c.json"))
        event = sweep_bandwidth_cached(
            schedule, SIZES, PacketBased(), cache=cache, engine="event"
        )
        lockstep = sweep_bandwidth_cached(
            schedule, SIZES, PacketBased(), cache=cache, engine="lockstep"
        )
        for e, l in zip(event.points, lockstep.points):
            assert e.time == l.time
            assert e.bandwidth == l.bandwidth


class TestArtifactSweep:
    def test_artifact_store_wired_through_run_sweep(self, tmp_path):
        from repro.sweep import ArtifactStore, SweepStats

        jobs = [
            SweepJob("torus-4x4", "ring", SIZES, engine="lockstep"),
            SweepJob("torus-4x4", "multitree", SIZES, engine="lockstep"),
        ]
        store_dir = str(tmp_path / "artifacts")
        stats = SweepStats()
        cold = run_sweep(jobs, artifacts_path=store_dir, stats=stats)
        assert stats.artifact_misses == len(jobs)
        assert stats.artifact_hits == 0

        warm_stats = SweepStats()
        warm = run_sweep(jobs, artifacts_path=store_dir, stats=warm_stats)
        assert warm_stats.artifact_hits == len(jobs)
        assert warm_stats.artifact_misses == 0
        for c, w in zip(cold, warm):
            assert [p.time for p in c.points] == [p.time for p in w.points]

    def test_artifact_sweep_matches_plain_sweep(self, tmp_path):
        job = SweepJob("torus-4x4", "ring", SIZES, engine="lockstep")
        plain = run_job(SweepJob("torus-4x4", "ring", SIZES))
        from repro.sweep import ArtifactStore

        store = ArtifactStore(str(tmp_path / "artifacts"))
        fast = run_job(job, artifacts=store)
        assert [p.time for p in fast.points] == [p.time for p in plain.points]
        assert [p.bandwidth for p in fast.points] == [
            p.bandwidth for p in plain.points
        ]

    def test_stats_line_reports_artifacts(self):
        from repro.sweep import SweepStats

        stats = SweepStats(
            jobs=2, points=4, wall_time_s=0.5, workers=1,
            artifact_hits=1, artifact_misses=1,
        )
        line = stats.format()
        assert "artifacts: 1 hits, 1 misses" in line
