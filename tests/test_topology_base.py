"""Unit tests for topology base classes and ring-embedding helpers."""

import pytest

from repro.topology import (
    FatTree,
    LinkSpec,
    Mesh2D,
    Ring1D,
    Torus2D,
    max_segment_hops,
    ring_order,
    ring_successor,
)
from repro.topology.base import Topology


class TestLinkSpec:
    def test_key(self):
        spec = LinkSpec(1, 2)
        assert spec.key == (1, 2)

    def test_defaults_match_table3(self):
        spec = LinkSpec(0, 1)
        assert spec.bandwidth == 16e9
        assert spec.latency == pytest.approx(150e-9)
        assert spec.capacity == 1


class TestTopologyBase:
    def test_minimum_nodes(self):
        with pytest.raises(ValueError):
            Topology(1, "tiny")

    def test_self_link_rejected(self):
        topo = Topology(2, "t")
        with pytest.raises(ValueError):
            topo._add_link(0, 0)

    def test_duplicate_link_rejected(self):
        topo = Topology(2, "t")
        topo._add_link(0, 1)
        with pytest.raises(ValueError):
            topo._add_link(0, 1)

    def test_node_neighbors_direct(self):
        torus = Torus2D(4, 4)
        nbrs = torus.node_neighbors(0)
        assert sorted(nbrs) == sorted(torus.neighbors(0))

    def test_node_neighbors_through_switch(self):
        ft = FatTree(4, 4)
        nbrs = ft.node_neighbors(0)
        assert set(nbrs) == {1, 2, 3}  # same-leaf peers

    def test_route_latency_and_hops(self):
        torus = Torus2D(4, 4)
        assert torus.hop_count(0, 2) == 2
        assert torus.route_latency(0, 2) == pytest.approx(2 * 150e-9)

    def test_links_copy_is_defensive(self):
        torus = Torus2D(2, 2)
        links = torus.links
        links.clear()
        assert torus.links  # internal state unaffected

    def test_repr(self):
        assert "torus-4x4" in repr(Torus2D(4, 4))


class TestRingHelpers:
    def test_ring_successor(self):
        succ = ring_successor([3, 1, 2])
        assert succ == {3: 1, 1: 2, 2: 3}

    def test_max_segment_hops_torus_hamiltonian(self):
        torus = Torus2D(4, 4)
        assert max_segment_hops(torus, ring_order(torus)) == 1

    def test_max_segment_hops_fattree(self):
        ft = FatTree(4, 4)
        # Cross-leaf segments traverse 4 links.
        assert max_segment_hops(ft, ring_order(ft)) == 4

    def test_ring_order_covers_all_nodes(self):
        for topo in (Torus2D(4, 4), Mesh2D(4, 6), Ring1D(7), FatTree(4, 4)):
            order = ring_order(topo)
            assert sorted(order) == list(topo.nodes)

    def test_odd_odd_mesh_falls_back_to_logical_ring(self):
        mesh = Mesh2D(3, 3)
        order = ring_order(mesh)
        assert sorted(order) == list(mesh.nodes)
        assert max_segment_hops(mesh, order) > 1
