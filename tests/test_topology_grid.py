"""Unit tests for 2D grid topologies (Torus2D / Mesh2D)."""

import pytest

from repro.topology import Mesh2D, Torus2D
from repro.topology.base import DirectAllocationGraph


class TestCoordinates:
    def test_coord_roundtrip(self):
        torus = Torus2D(4, 3)
        for node in torus.nodes:
            x, y = torus.coord(node)
            assert torus.node_at(x, y) == node

    def test_row_major_layout(self):
        torus = Torus2D(4, 4)
        assert torus.coord(0) == (0, 0)
        assert torus.coord(5) == (1, 1)
        assert torus.coord(15) == (3, 3)

    def test_node_at_wraps(self):
        torus = Torus2D(4, 4)
        assert torus.node_at(4, 0) == 0
        assert torus.node_at(-1, 0) == 3

    def test_row_and_col_members(self):
        torus = Torus2D(4, 4)
        assert torus.row_members(1) == [4, 5, 6, 7]
        assert torus.col_members(2) == [2, 6, 10, 14]


class TestLinks:
    def test_torus_degree(self):
        torus = Torus2D(4, 4)
        for node in torus.nodes:
            assert len(torus.neighbors(node)) == 4

    def test_mesh_corner_degree(self):
        mesh = Mesh2D(4, 4)
        assert len(mesh.neighbors(0)) == 2
        assert len(mesh.neighbors(5)) == 4

    def test_torus_total_links(self):
        torus = Torus2D(4, 4)
        assert torus.total_link_capacity() == 4 * 16

    def test_mesh_total_links(self):
        mesh = Mesh2D(4, 4)
        # 2 * (3*4 horizontal + 3*4 vertical) directed links
        assert mesh.total_link_capacity() == 2 * (12 + 12)

    def test_width2_torus_merges_wrap_duplicates(self):
        torus = Torus2D(2, 4)
        # +x and -x wrap to the same neighbor: one link of capacity 2.
        x_nbr = torus.node_at(1, 0)
        assert torus.link(0, x_nbr).capacity == 2

    def test_links_are_bidirectional(self):
        for topo in (Torus2D(4, 4), Mesh2D(3, 4)):
            for (u, v) in topo.links:
                assert topo.has_link(v, u)

    def test_too_small_grid_rejected(self):
        with pytest.raises(ValueError):
            Mesh2D(1, 4)


class TestRouting:
    def test_neighbor_route_is_one_hop(self):
        torus = Torus2D(4, 4)
        assert torus.route(0, 1) == [(0, 1)]

    def test_self_route_empty(self):
        assert Torus2D(4, 4).route(5, 5) == []

    def test_dimension_order_x_first(self):
        mesh = Mesh2D(4, 4)
        path = mesh.route(0, 5)  # (0,0) -> (1,1)
        assert path == [(0, 1), (1, 5)]

    def test_torus_wrap_shortest_path(self):
        torus = Torus2D(4, 4)
        # 0 -> 3 is one wrap hop in -x, not three hops forward.
        assert torus.route(0, 3) == [(0, 3)]

    def test_mesh_no_wraparound(self):
        mesh = Mesh2D(4, 4)
        assert len(mesh.route(0, 3)) == 3

    def test_route_hops_bounded_by_diameter(self):
        torus = Torus2D(4, 4)
        for src in torus.nodes:
            for dst in torus.nodes:
                assert len(torus.route(src, dst)) <= 4

    def test_route_links_exist_and_chain(self):
        for topo in (Torus2D(4, 4), Mesh2D(4, 4)):
            for src in topo.nodes:
                for dst in topo.nodes:
                    path = topo.route(src, dst)
                    cur = src
                    for (u, v) in path:
                        assert u == cur
                        assert topo.has_link(u, v)
                        cur = v
                    if path:
                        assert cur == dst


class TestNeighborPreference:
    def test_y_dimension_first(self):
        torus = Torus2D(4, 4)
        prefs = torus.neighbor_preference(5)  # (1,1)
        assert prefs[:2] == [torus.node_at(1, 2), torus.node_at(1, 0)]

    def test_no_duplicates(self):
        torus = Torus2D(2, 2)
        prefs = torus.neighbor_preference(0)
        assert len(prefs) == len(set(prefs))


class TestHamiltonianRing:
    @pytest.mark.parametrize("width,height", [(2, 2), (4, 4), (8, 8), (4, 6), (3, 4)])
    def test_ring_is_hamiltonian_cycle(self, width, height):
        mesh = Mesh2D(width, height)
        order = mesh.hamiltonian_ring()
        assert sorted(order) == list(mesh.nodes)
        n = len(order)
        for i in range(n):
            assert mesh.has_link(order[i], order[(i + 1) % n])

    def test_odd_by_even_transposes(self):
        mesh = Mesh2D(4, 3)  # odd rows, even columns
        order = mesh.hamiltonian_ring()
        assert sorted(order) == list(mesh.nodes)

    def test_odd_by_odd_raises(self):
        with pytest.raises(ValueError):
            Mesh2D(3, 3).hamiltonian_ring()


class TestAllocationGraph:
    def test_direct_allocation_consumes_capacity(self):
        torus = Torus2D(4, 4)
        alloc = torus.allocation_graph()
        assert isinstance(alloc, DirectAllocationGraph)
        before = alloc.total_remaining()
        found = alloc.find_child(0, lambda c: True)
        assert found is not None
        assert found.parent == 0
        assert alloc.total_remaining() == before - 1

    def test_allocation_respects_eligibility(self):
        torus = Torus2D(4, 4)
        alloc = torus.allocation_graph()
        found = alloc.find_child(0, lambda c: False)
        assert found is None

    def test_allocation_exhausts(self):
        torus = Torus2D(2, 2)
        alloc = torus.allocation_graph()
        grabbed = 0
        while alloc.find_child(0, lambda c: True) is not None:
            grabbed += 1
        # Node 0 in a 2x2 torus has 2 neighbors with capacity-2 links.
        assert grabbed == 4

    def test_allocation_prefers_y(self):
        torus = Torus2D(4, 4)
        alloc = torus.allocation_graph()
        found = alloc.find_child(0, lambda c: True)
        assert found.child == torus.node_at(0, 1)
