"""Unit tests for switch-based topologies (FatTree, BiGraph)."""

import pytest

from repro.topology import BiGraph, FatTree
from repro.topology.base import IndirectAllocationGraph


class TestFatTreeStructure:
    def test_dgx2_like_16_nodes(self):
        ft = FatTree(4, 4)
        assert ft.num_nodes == 16
        assert ft.num_switches == 8  # 4 leaves + 4 spines

    def test_8ary_64_nodes(self):
        ft = FatTree(8, 8)
        assert ft.num_nodes == 64
        assert ft.num_switches == 16

    def test_leaf_assignment(self):
        ft = FatTree(4, 4)
        assert ft.leaf_of(0) == ft.leaf_of(3)
        assert ft.leaf_of(0) != ft.leaf_of(4)
        assert ft.leaf_members(1) == [4, 5, 6, 7]

    def test_switch_vertices_flagged(self):
        ft = FatTree(4, 4)
        assert not ft.is_switch(15)
        assert ft.is_switch(16)

    def test_full_bisection_uplinks(self):
        ft = FatTree(4, 4)
        leaf = ft.leaf_of(0)
        up = [v for v in ft.neighbors(leaf) if ft.is_switch(v)]
        assert len(up) == 4  # one link to each spine


class TestFatTreeRouting:
    def test_same_leaf_two_hops(self):
        ft = FatTree(4, 4)
        assert len(ft.route(0, 1)) == 2

    def test_cross_leaf_four_hops(self):
        ft = FatTree(4, 4)
        path = ft.route(0, 5)
        assert len(path) == 4
        assert path[0] == (0, ft.leaf_of(0))
        assert path[-1][1] == 5

    def test_route_uses_existing_links(self):
        ft = FatTree(4, 4)
        for src in ft.nodes:
            for dst in ft.nodes:
                for (u, v) in ft.route(src, dst):
                    assert ft.has_link(u, v)

    def test_spines_spread_by_destination(self):
        ft = FatTree(4, 4)
        spines = {ft.route(0, dst)[1][1] for dst in range(4, 8)}
        assert len(spines) == 4  # different dests pick different spines


class TestBiGraphStructure:
    def test_paper_instances(self):
        assert BiGraph(2, 8).num_nodes == 32   # "4x8"
        assert BiGraph(2, 16).num_nodes == 64  # "4x16"

    def test_layers_split_evenly(self):
        bg = BiGraph(2, 8)
        upper = [n for n in bg.nodes if bg.layer_of(n) == 0]
        assert len(upper) == 16

    def test_switch_members(self):
        bg = BiGraph(2, 4)
        first_switch = bg.switch_of(0)
        assert bg.switch_members(first_switch) == [0, 1, 2, 3]

    def test_interlayer_capacity_full_bisection(self):
        bg = BiGraph(2, 8)
        upper_sw = bg.switch_of(0)
        lower_sw = bg.switch_of(31)
        assert bg.link(upper_sw, lower_sw).capacity == 4  # 8 nodes / 2 switches

    def test_no_same_layer_switch_links(self):
        bg = BiGraph(2, 8)
        sw_a = bg.switch_of(0)
        sw_b = bg.switch_of(8)  # second upper switch
        assert not bg.has_link(sw_a, sw_b)

    def test_indivisible_capacity_rejected(self):
        with pytest.raises(ValueError):
            BiGraph(3, 8)


class TestBiGraphRouting:
    def test_same_switch_two_hops(self):
        bg = BiGraph(2, 8)
        assert len(bg.route(0, 1)) == 2

    def test_cross_layer_three_hops(self):
        bg = BiGraph(2, 8)
        src, dst = 0, 16  # upper-layer node to lower-layer node
        assert bg.layer_of(src) != bg.layer_of(dst)
        assert len(bg.route(src, dst)) == 3

    def test_same_layer_cross_switch_four_hops(self):
        bg = BiGraph(2, 8)
        src, dst = 0, 8  # both upper layer, different switches
        assert bg.layer_of(src) == bg.layer_of(dst)
        assert len(bg.route(src, dst)) == 4

    def test_route_links_exist(self):
        bg = BiGraph(2, 4)
        for src in bg.nodes:
            for dst in bg.nodes:
                for (u, v) in bg.route(src, dst):
                    assert bg.has_link(u, v)


class TestIndirectAllocation:
    def test_same_switch_child_preferred(self):
        ft = FatTree(4, 4)
        alloc = ft.allocation_graph()
        assert isinstance(alloc, IndirectAllocationGraph)
        found = alloc.find_child(0, lambda c: c != 0)
        assert found is not None
        # BFS finds a same-leaf node first: route is node->leaf->node.
        assert len(found.route) == 2
        assert found.child in (1, 2, 3)

    def test_cross_switch_when_leaf_exhausted(self):
        ft = FatTree(4, 4)
        alloc = ft.allocation_graph()
        found = alloc.find_child(0, lambda c: c >= 4)
        assert found is not None
        assert len(found.route) == 4

    def test_capacity_consumed_along_route(self):
        ft = FatTree(4, 4)
        alloc = ft.allocation_graph()
        before = alloc.total_remaining()
        found = alloc.find_child(0, lambda c: c >= 4)
        assert alloc.total_remaining() == before - len(found.route)

    def test_nic_capacity_limits_parent(self):
        ft = FatTree(4, 4)
        alloc = ft.allocation_graph()
        assert alloc.find_child(0, lambda c: c != 0) is not None
        # The parent's single NIC uplink is now consumed.
        assert alloc.find_child(0, lambda c: c != 0) is None

    def test_bigraph_allocation_finds_same_switch_first(self):
        bg = BiGraph(2, 8)
        alloc = bg.allocation_graph()
        found = alloc.find_child(0, lambda c: c != 0)
        assert found is not None
        assert len(found.route) == 2
