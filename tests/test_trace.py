"""Tests for the trace/observability subsystem (repro.trace)."""

import json

import pytest

from repro.cli import main
from repro.collectives import build_schedule
from repro.network import Message, NetworkSimulator
from repro.ni import simulate_allreduce
from repro.runtime import Communicator
from repro.topology import Mesh2D, Torus2D
from repro.trace import (
    COMPONENTS,
    Trace,
    extract_critical_path,
    format_hotspots,
    format_trace_report,
    link_hotspots,
    to_chrome_trace,
    utilization_heatmap,
    write_chrome_trace,
)
from repro.training import overlapped_iteration
from repro.compute import get_model

MiB = 1 << 20


def traced_allreduce(algorithm="multitree", topo=None, size=16 * MiB, **kwargs):
    schedule = build_schedule(algorithm, topo or Torus2D(4, 4))
    trace = Trace()
    result = simulate_allreduce(schedule, size, recorder=trace, **kwargs)
    return result, trace


class TestRecorder:
    def test_collects_all_event_families(self):
        result, trace = traced_allreduce()
        assert len(trace.messages) == len(result.schedule.ops)
        assert len(trace.hops) == sum(
            len(ev.route) for ev in trace.messages.values()
        )
        assert [g.step for g in trace.gates] == list(
            range(1, result.schedule.num_steps + 1)
        )
        assert trace.metadata["algorithm"] == "multitree"
        assert trace.metadata["data_bytes"] == float(16 * MiB)

    def test_message_events_carry_op_metadata(self):
        _, trace = traced_allreduce()
        kinds = {ev.op_kind for ev in trace.messages.values()}
        assert kinds == {"reduce", "gather"}
        assert all(ev.op_step >= 1 for ev in trace.messages.values())

    def test_hops_of_follows_route_order(self):
        _, trace = traced_allreduce()
        for index, ev in trace.messages.items():
            hops = trace.hops_of(index)
            assert [h.link for h in hops] == list(ev.route)
            assert all(h.grant >= h.arrive for h in hops)

    def test_finish_time_matches_simulation(self):
        result, trace = traced_allreduce()
        assert trace.finish_time == result.time

    def test_to_dict_round_trips_through_json(self):
        _, trace = traced_allreduce(topo=Mesh2D(2, 2), size=4096)
        data = json.loads(json.dumps(trace.to_dict()))
        assert data["finish_time"] == trace.finish_time
        assert len(data["messages"]) == len(trace.messages)
        assert len(data["hops"]) == len(trace.hops)
        assert len(data["step_gates"]) == len(trace.gates)


class TestDisabledTracing:
    def test_recorder_none_is_bit_identical(self):
        schedule = build_schedule("multitree", Torus2D(4, 4))
        plain = simulate_allreduce(schedule, 16 * MiB)
        traced = simulate_allreduce(schedule, 16 * MiB, recorder=Trace())
        assert plain.simulation.finish_time == traced.simulation.finish_time
        assert plain.simulation.total_wire_bytes == traced.simulation.total_wire_bytes
        assert plain.simulation.link_busy == traced.simulation.link_busy
        for a, b in zip(plain.simulation.timings, traced.simulation.timings):
            assert (a.ready, a.inject, a.deliver, a.ideal_deliver) == (
                b.ready, b.inject, b.deliver, b.ideal_deliver
            )


class TestCriticalPath:
    @pytest.mark.parametrize("algorithm", ["multitree", "ring", "dbtree"])
    def test_components_sum_to_finish_time(self, algorithm):
        result, trace = traced_allreduce(algorithm)
        path = extract_critical_path(trace)
        assert path.finish_time == result.time
        assert path.total == pytest.approx(result.time, rel=1e-12)
        totals = path.component_totals()
        assert set(totals) == set(COMPONENTS)
        assert all(value >= 0 for value in totals.values())

    def test_chain_is_time_ordered_and_dependency_linked(self):
        _, trace = traced_allreduce()
        path = extract_critical_path(trace)
        for prev, nxt in zip(path.segments, path.segments[1:]):
            assert prev.message.index in nxt.message.deps
            assert nxt.anchor == prev.message.deliver
        assert path.segments[-1].message.deliver == path.finish_time

    def test_sw_overhead_component_appears(self):
        result, trace = traced_allreduce(scheduling_overhead=1e-6)
        path = extract_critical_path(trace)
        totals = path.component_totals()
        assert totals["sw_overhead"] > 0
        assert path.total == pytest.approx(result.time, rel=1e-12)

    def test_without_lockstep_no_stall_on_gates(self):
        result, trace = traced_allreduce(algorithm="ring", lockstep=False)
        path = extract_critical_path(trace)
        assert not trace.gates
        assert path.total == pytest.approx(result.time, rel=1e-12)

    def test_empty_trace(self):
        path = extract_critical_path(Trace())
        assert path.segments == [] and path.total == 0.0

    def test_format_mentions_every_component(self):
        _, trace = traced_allreduce()
        text = extract_critical_path(trace).format()
        for name in COMPONENTS:
            assert name in text


class TestHotspots:
    def test_contended_link_ranks_first(self):
        # Three messages fight for one link; one runs free elsewhere.
        topo = Torus2D(4, 4)
        sim = NetworkSimulator(topo)
        trace = Trace()
        size = 64 * 1024
        sim.run(
            [
                Message(0, 1, size, route=[(0, 1)]),
                Message(0, 1, size, route=[(0, 1)]),
                Message(0, 1, size, route=[(0, 1)]),
                Message(2, 3, size, route=[(2, 3)]),
            ],
            recorder=trace,
        )
        spots = link_hotspots(trace)
        assert spots[0].link == (0, 1)
        assert spots[0].queue_wait > 0
        assert spots[0].grants == 3
        assert spots[0].delayed_grants == 2
        quiet = [s for s in spots if s.link == (2, 3)][0]
        assert quiet.queue_wait == 0.0
        assert "0->1" in format_hotspots(trace)

    def test_contention_free_run_reports_none(self):
        topo = Torus2D(4, 4)
        trace = Trace()
        NetworkSimulator(topo).run(
            [Message(0, 1, 1024, route=[(0, 1)])], recorder=trace
        )
        assert "none" in format_hotspots(trace)


class TestHeatmap:
    def test_rows_and_columns(self):
        _, trace = traced_allreduce(topo=Mesh2D(2, 2), size=1 * MiB)
        text = utilization_heatmap(trace, Mesh2D(2, 2))
        lines = text.splitlines()
        # 8 directed mesh links + header + column labels.
        assert len(lines) == 2 + 8
        assert "s1" in lines[1]
        assert any("0->1" in line for line in lines)

    def test_no_traffic(self):
        assert "no traffic" in utilization_heatmap(Trace())

    def test_equal_bins_without_gates(self):
        _, trace = traced_allreduce(
            algorithm="ring", topo=Mesh2D(2, 2), size=1 * MiB, lockstep=False
        )
        text = utilization_heatmap(trace)
        assert "time bin" in text


class TestChromeTraceExport:
    def test_structure(self):
        _, trace = traced_allreduce(topo=Mesh2D(2, 2), size=4096)
        doc = to_chrome_trace(trace)
        events = doc["traceEvents"]
        assert events
        phases = {ev["ph"] for ev in events}
        assert {"X", "b", "e", "M", "i"} <= phases
        for ev in events:
            assert "pid" in ev and "tid" in ev
            if ev["ph"] != "M":
                assert ev["ts"] >= 0
            if ev["ph"] == "X":
                assert ev["dur"] >= 0
        # Async begin/end pairs balance per id.
        begins = sorted(ev["id"] for ev in events if ev["ph"] == "b")
        ends = sorted(ev["id"] for ev in events if ev["ph"] == "e")
        assert begins == ends

    def test_write_chrome_trace(self, tmp_path):
        _, trace = traced_allreduce(topo=Mesh2D(2, 2), size=4096)
        path = tmp_path / "out.json"
        write_chrome_trace(trace, str(path))
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]
        assert doc["otherData"]["algorithm"] == "multitree"


class TestCommunicatorTrace:
    def test_trace_matches_prediction_and_bypasses_cache(self):
        comm = Communicator(Torus2D(2, 2))
        timing = comm.predict(1 * MiB)
        result, trace = comm.trace(1 * MiB)
        assert result.time == timing.time
        assert trace.messages and trace.hops and trace.gates
        # A second trace records fresh events (no cache short-circuit).
        _, again = comm.trace(1 * MiB)
        assert again is not trace and len(again.messages) == len(trace.messages)

    def test_bad_bytes_rejected(self):
        with pytest.raises(ValueError):
            Communicator(Torus2D(2, 2)).trace(0)


class TestTrainingSpans:
    def test_overlapped_iteration_emits_compute_and_comm_spans(self):
        model = get_model("AlexNet")
        schedule = build_schedule("multitree", Torus2D(4, 4))
        trace = Trace()
        breakdown = overlapped_iteration(model, schedule, recorder=trace)
        compute = [s for s in trace.spans if s.track == "compute"]
        comm = [s for s in trace.spans if s.track == "comm"]
        # forward + one span per backward layer.
        assert len(compute) == 1 + len(model.layers)
        assert len(comm) == len(model.weighted_layers())
        assert sum(s.duration for s in comm) == pytest.approx(
            breakdown.allreduce_time
        )
        assert max(s.end for s in trace.spans) == pytest.approx(
            breakdown.total_time
        )
        assert trace.metadata["execution"] == "overlapped"
        # Spans show up in the combined report and the Perfetto export.
        assert "phase spans" in format_trace_report(trace)
        doc = to_chrome_trace(trace)
        assert any(ev.get("cat") == "comm" for ev in doc["traceEvents"])


class TestTraceCLI:
    def test_acceptance_command(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        rc = main(
            [
                "trace",
                "--algorithm", "multitree",
                "--topology", "torus-4x4",
                "--size", "16MiB",
                "--output", str(out),
            ]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        printed = capsys.readouterr().out
        assert "critical path" in printed
        assert "lockstep_stall" in printed
        assert "perfetto" in printed.lower()

    def test_dims_form_and_message_flow_control(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        rc = main(
            [
                "trace", "--algorithm", "ring", "--topology", "mesh",
                "--dims", "2x2", "--size", "64K", "--flow-control", "message",
                "--output", str(out),
            ]
        )
        assert rc == 0
        assert json.loads(out.read_text())["otherData"]["flow_control"] == "message"
        assert "critical path" in capsys.readouterr().out

    def test_bad_topology_spec(self):
        with pytest.raises(SystemExit):
            main(["trace", "--topology", "torus"])


class TestReport:
    def test_report_sections(self):
        result, trace = traced_allreduce(topo=Mesh2D(2, 2), size=1 * MiB)
        text = format_trace_report(trace, Mesh2D(2, 2))
        assert "critical path" in text
        assert "hotspots" in text
        assert "heatmap" in text or "link utilization" in text
        assert "%.3f" % (result.time * 1e6) in text
