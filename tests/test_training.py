"""Tests for the training iteration models (Fig. 11a/11b)."""

import pytest

from repro.collectives import build_schedule
from repro.compute import get_model
from repro.ni import simulate_allreduce
from repro.topology import Torus2D
from repro.training import (
    CalibratedAllReduce,
    nonoverlapped_iteration,
    overlapped_iteration,
)

MiB = 1 << 20


@pytest.fixture(scope="module")
def torus44_schedules():
    topo = Torus2D(4, 4)
    return {alg: build_schedule(alg, topo) for alg in ("ring", "multitree")}


class TestCalibratedAllReduce:
    def test_affine_model_matches_simulation(self, torus44_schedules):
        schedule = torus44_schedules["ring"]
        cal = CalibratedAllReduce(schedule)
        for size in (256 * 1024, 4 * MiB, 48 * MiB):
            exact = simulate_allreduce(schedule, size).time
            assert cal.time(size) == pytest.approx(exact, rel=0.02)

    def test_zero_bytes_is_free(self, torus44_schedules):
        cal = CalibratedAllReduce(torus44_schedules["ring"])
        assert cal.time(0) == 0.0

    def test_alpha_beta_positive(self, torus44_schedules):
        cal = CalibratedAllReduce(torus44_schedules["multitree"])
        assert cal.alpha >= 0
        assert cal.beta > 0

    def test_bandwidth_grows_with_size(self, torus44_schedules):
        cal = CalibratedAllReduce(torus44_schedules["ring"])
        assert cal.bandwidth(64 * MiB) > cal.bandwidth(64 * 1024)


class TestNonOverlapped:
    def test_total_is_compute_plus_comm(self, torus44_schedules):
        model = get_model("GoogLeNet")
        b = nonoverlapped_iteration(model, torus44_schedules["ring"])
        assert b.total_time == pytest.approx(b.compute_time + b.allreduce_time)
        assert b.overlap_time == 0.0
        assert b.exposed_comm_time == b.allreduce_time

    def test_multitree_beats_ring(self, torus44_schedules):
        model = get_model("Transformer")
        ring = nonoverlapped_iteration(model, torus44_schedules["ring"])
        mt = nonoverlapped_iteration(model, torus44_schedules["multitree"])
        assert mt.total_time < ring.total_time
        assert mt.compute_time == pytest.approx(ring.compute_time)

    def test_comm_fraction_ordering(self, torus44_schedules):
        schedule = torus44_schedules["ring"]
        ncf = nonoverlapped_iteration(get_model("NCF"), schedule)
        agz = nonoverlapped_iteration(get_model("AlphaGoZero"), schedule)
        assert ncf.comm_fraction > 0.9
        assert agz.comm_fraction < 0.6


class TestOverlapped:
    def test_overlap_never_slower_than_nonoverlap(self, torus44_schedules):
        for name in ("GoogLeNet", "NCF", "ResNet50"):
            model = get_model(name)
            schedule = torus44_schedules["ring"]
            non = nonoverlapped_iteration(model, schedule)
            over = overlapped_iteration(model, schedule)
            assert over.total_time <= non.total_time * 1.01

    def test_breakdown_consistency(self, torus44_schedules):
        model = get_model("ResNet50")
        b = overlapped_iteration(model, torus44_schedules["ring"])
        assert b.overlap_time + b.exposed_comm_time == pytest.approx(
            b.allreduce_time, rel=1e-6
        )
        assert b.total_time == pytest.approx(
            b.compute_time + b.exposed_comm_time, rel=1e-6
        )

    def test_cnn_hides_most_communication(self, torus44_schedules):
        model = get_model("AlphaGoZero")
        b = overlapped_iteration(model, torus44_schedules["ring"])
        assert b.overlap_time > 0.5 * b.allreduce_time

    def test_ncf_stays_communication_bound(self, torus44_schedules):
        model = get_model("NCF")
        b = overlapped_iteration(model, torus44_schedules["ring"])
        assert b.exposed_comm_time > 0.8 * b.allreduce_time

    def test_reuses_precomputed_calibration(self, torus44_schedules):
        schedule = torus44_schedules["ring"]
        cal = CalibratedAllReduce(schedule)
        model = get_model("GoogLeNet")
        a = overlapped_iteration(model, schedule, allreduce_model=cal)
        b = overlapped_iteration(model, schedule)
        assert a.total_time == pytest.approx(b.total_time, rel=1e-9)
