"""Tests for tree rendering and forest statistics."""

from repro.analysis import render_forest, render_tree, tree_statistics
from repro.collectives import build_trees
from repro.topology import Mesh2D, Torus2D


def test_render_contains_all_nodes_and_steps():
    trees, _ = build_trees(Mesh2D(2, 2))
    text = render_tree(trees[0])
    assert text.startswith("T0")
    for node in (1, 2, 3):
        assert " %d (t=" % node in text


def test_render_indents_depth():
    trees, _ = build_trees(Torus2D(4, 4))
    text = render_tree(trees[0])
    assert "|  " in text or "   " in text  # at least two levels


def test_forest_limits_output():
    trees, _ = build_trees(Torus2D(4, 4))
    text = render_forest(trees, limit=2)
    assert "T0" in text and "T1" in text and "T2" not in text


def test_statistics_shape():
    trees, tot_t = build_trees(Torus2D(4, 4))
    stats = tree_statistics(trees)
    assert stats["num_trees"] == 16
    assert 1 <= stats["min_depth"] <= stats["max_depth"] <= tot_t
    assert 1 <= stats["max_fanout"] <= 4  # torus degree bounds fanout
    assert 0 < stats["mean_fanout"] <= stats["max_fanout"]


def test_statistics_empty_edges():
    stats = tree_statistics([])
    assert stats["num_trees"] == 0
    assert stats["max_depth"] == 0
