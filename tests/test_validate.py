"""Tests for the data-level schedule executor/validator."""

from fractions import Fraction

import numpy as np
import pytest

from repro.collectives import ring_allreduce
from repro.collectives.schedule import ChunkRange, CommOp, OpKind, Schedule
from repro.collectives.validate import ScheduleError, execute, verify_allreduce
from repro.topology import Torus2D


def _drop_one_op(schedule: Schedule) -> Schedule:
    return Schedule(
        topology=schedule.topology,
        ops=schedule.ops[:-1],
        algorithm=schedule.algorithm + "-broken",
    )


def _corrupt_gather_source(schedule: Schedule) -> Schedule:
    """Repoint the first gather's source to a node holding only a partial."""
    ops = list(schedule.ops)
    for i, op in enumerate(ops):
        if op.kind is OpKind.GATHER:
            wrong_src = (op.src + 2) % schedule.topology.num_nodes
            if wrong_src == op.dst:
                wrong_src = (wrong_src + 1) % schedule.topology.num_nodes
            ops[i] = CommOp(op.kind, wrong_src, op.dst, op.chunk, op.step, op.flow)
            break
    return Schedule(
        topology=schedule.topology,
        ops=ops,
        algorithm=schedule.algorithm + "-corrupt",
    )


def test_correct_schedule_passes():
    verify_allreduce(ring_allreduce(Torus2D(2, 2)))


def test_missing_op_detected():
    broken = _drop_one_op(ring_allreduce(Torus2D(2, 2)))
    with pytest.raises(ScheduleError):
        verify_allreduce(broken)


def test_partial_gather_source_detected():
    broken = _corrupt_gather_source(ring_allreduce(Torus2D(2, 2)))
    with pytest.raises(ScheduleError):
        verify_allreduce(broken)


def test_execute_returns_counts_and_values():
    schedule = ring_allreduce(Torus2D(2, 2))
    result = execute(schedule)
    assert result.correct
    assert result.counts.shape == (4, 4)
    assert np.all(result.counts == 4)


def test_wrong_input_shape_rejected():
    schedule = ring_allreduce(Torus2D(2, 2))
    with pytest.raises(ValueError):
        execute(schedule, inputs=np.zeros((3, 4), dtype=np.int64))


def test_snapshot_semantics_no_same_step_chaining():
    """A value sent at step t must be the state at the end of step t-1.

    Two reduces of the same chunk in the same step (a -> b and b -> c) must
    NOT forward a's contribution through b to c within that step.
    """
    topo = Torus2D(2, 2)
    chunk = ChunkRange(Fraction(0), Fraction(1))
    ops = [
        CommOp(OpKind.REDUCE, 0, 1, chunk, step=1),
        CommOp(OpKind.REDUCE, 1, 3, chunk, step=1),
    ]
    schedule = Schedule(topology=topo, ops=ops, algorithm="snapshot-test")
    inputs = np.array([[10], [1], [0], [0]], dtype=np.int64)
    result = execute(schedule, inputs)
    # Node 3 got node 1's pre-step value only.
    assert result.values[3, 0] == 1
    assert result.counts[3, 0] == 2
    # Node 1 aggregated node 0.
    assert result.values[1, 0] == 11


def test_gather_overwrites_not_accumulates():
    topo = Torus2D(2, 2)
    chunk = ChunkRange(Fraction(0), Fraction(1))
    ops = [CommOp(OpKind.GATHER, 0, 1, chunk, step=1)]
    schedule = Schedule(topology=topo, ops=ops, algorithm="gather-test")
    inputs = np.array([[7], [100], [0], [0]], dtype=np.int64)
    result = execute(schedule, inputs)
    assert result.values[1, 0] == 7
    assert result.counts[1, 0] == 1


def test_misrouted_endpoint_detected():
    topo = Torus2D(2, 2)
    ops = [
        CommOp(OpKind.REDUCE, 0, 7, ChunkRange(Fraction(0), Fraction(1)), step=1)
    ]
    bad = Schedule(topology=topo, ops=ops, algorithm="endpoint-test")
    with pytest.raises(ValueError):
        verify_allreduce(bad)
